open Lp_ir.Ast
module Cache = Lp_cache.Cache
module Memory = Lp_mem.Memory
module Compiler = Lp_compiler.Compiler
module Isa = Lp_isa.Isa
module Iss = Lp_iss.Iss
module Cmos6 = Lp_tech.Cmos6
module Platform = Lp_tech.Platform

type config = {
  icache : Cache.config;
  dcache : Cache.config;
  fuel : int;
  buffer_capacity_words : int;
  asic_word_cycles : int;
  peephole : bool;
  platform : Platform.t;
}

let default_config =
  {
    icache = Cache.default_icache;
    dcache = Cache.default_dcache;
    fuel = 500_000_000;
    buffer_capacity_words = 2048;
    asic_word_cycles = 12;
    peephole = false;
    platform = Platform.sparclite;
  }

(* A config for a named platform: its cache geometries plus its core
   and memory parameters. The separate [icache]/[dcache] fields remain
   the authority on geometry — an explicit cache override (CLI flag,
   protocol field, explore axis) refines the platform's geometry by
   updating them after this call. *)
let config_of_platform ?(base = default_config) (p : Platform.t) =
  {
    base with
    platform = p;
    icache = Cache.config_of_geom p.Platform.icache;
    dcache = Cache.config_of_geom p.Platform.dcache;
  }

type asic_task = {
  acall_id : int;
  stmts : stmt list;
  use_scalars : string list;
  gen_scalars : string list;
  private_arrays : string list;
  buffer_in_arrays : (string * int) list;
  buffer_out_arrays : (string * int) list;
  stream_arrays : string list;
  power_w : float;
  clock_scale : float;
  seg_lengths : (int * int) list;
}

type report = {
  outputs : int list;
  up_cycles : int;
  stall_cycles : int;
  asic_cycles : int;
  instr_count : int;
  icache_j : float;
  dcache_j : float;
  mem_j : float;
  bus_j : float;
  up_j : float;
  asic_j : float;
  icache_stats : Cache.stats;
  dcache_stats : Cache.stats;
  mem_totals : Memory.totals;
  asic_invocations : int;
  class_counts : (Lp_isa.Isa.opclass * int) list;
}

let total_energy_j r =
  r.icache_j +. r.dcache_j +. r.mem_j +. r.bus_j +. r.up_j +. r.asic_j

let total_cycles r = r.up_cycles + r.stall_cycles + r.asic_cycles

let runtime_s ?(platform = Platform.sparclite) r =
  float_of_int (total_cycles r) *. Platform.clock_period_s platform

let mailbox_name = "$mailbox"

(* Everything about an ASIC invocation that depends only on the program,
   the layout and the task — mailbox geometry, the marshalling
   prelude/epilogue, the mini program handed to the interpreter, the
   burst word counts — is computed once per task in [prepare_task]. The
   seed rebuilt all of it (including fresh array images and repeated
   [List.assoc] walks over the layout) on every single acall. *)
type prepared = {
  ptask : asic_task;
  p_mailbox_base : int;
  p_n_slots : int;
  p_n_gen : int;
  p_burst_in : int;  (** words bursted in per invocation *)
  p_burst_out : int;
  p_mini : program;
      (** constant skeleton; its array [init] images alias [p_scratch] *)
  p_scratch : (int * int array) list;
      (** (shared-memory word base, buffer) per program array; refilled
          from machine memory before each run — {!Lp_ir.Interp.run}
          copies [init] images, so reuse is safe *)
  p_mailbox_img : int array;
  p_stream : (string, unit) Hashtbl.t;  (** membership set of stream arrays *)
  p_array_base : (string, int) Hashtbl.t;  (** shared name -> word base *)
}

let prepare_task (p : program) (layout : Compiler.layout) array_base task =
  let mailbox_slots = List.assoc task.acall_id layout.Compiler.mailbox_slots in
  let mailbox_base =
    List.fold_left
      (fun acc (_, a) -> min acc a)
      max_int
      (("", max_int) :: mailbox_slots)
  in
  let n_slots = List.length mailbox_slots in
  let scratch =
    List.map (fun a -> (Hashtbl.find array_base a.aname, Array.make a.size 0))
      p.arrays
  in
  let arrays =
    List.map2
      (fun a (_, buf) -> { aname = a.aname; size = a.size; init = Some buf })
      p.arrays scratch
  in
  let mailbox_img = Array.make (max n_slots 1) 0 in
  let arrays =
    arrays
    @ [ { aname = mailbox_name; size = max n_slots 1; init = Some mailbox_img } ]
  in
  (* Prelude/epilogue marshal the scalars; their sid -1 keeps them out
     of the profile. *)
  let slot v =
    match List.assoc_opt v mailbox_slots with
    | Some addr -> addr - mailbox_base
    | None -> invalid_arg ("System: no mailbox slot for " ^ v)
  in
  (* Every mailbox scalar is loaded, not only the uses: gen is
     may-write, and an unwritten scalar must round-trip unchanged. *)
  let prelude =
    List.map
      (fun (v, _) ->
        { sid = -1; node = Assign (v, Load (mailbox_name, Int (slot v))) })
      mailbox_slots
  in
  let epilogue =
    List.map
      (fun v ->
        { sid = -1; node = Store (mailbox_name, Int (slot v), Var v) })
      task.gen_scalars
  in
  let scalars = List.map fst mailbox_slots in
  let mini =
    {
      arrays;
      funcs =
        [
          {
            fname = "$asic";
            params = [];
            locals = scalars;
            body = prelude @ task.stmts @ epilogue;
          };
        ];
      entry = "$asic";
    }
  in
  let stream = Hashtbl.create 8 in
  List.iter (fun a -> Hashtbl.replace stream a ()) task.stream_arrays;
  {
    ptask = task;
    p_mailbox_base = mailbox_base;
    p_n_slots = n_slots;
    p_n_gen = List.length task.gen_scalars;
    p_burst_in =
      List.fold_left (fun acc (_, n) -> acc + n) 0 task.buffer_in_arrays;
    p_burst_out =
      List.fold_left (fun acc (_, n) -> acc + n) 0 task.buffer_out_arrays;
    p_mini = mini;
    p_scratch = scratch;
    p_mailbox_img = mailbox_img;
    p_stream = stream;
    p_array_base = array_base;
  }

(* Execute one ASIC invocation functionally: interpret the cluster body
   against the current shared memory, with scalars passed through the
   mailbox array. Refills the prepared scratch images from shared memory
   (block reads: one bounds check per array) and writes the interpreter
   results back. *)
let run_asic_cluster prep machine =
  List.iter
    (fun (base, buf) -> Iss.read_mem_block machine base buf)
    prep.p_scratch;
  let mb = prep.p_mailbox_img in
  for i = 0 to prep.p_n_slots - 1 do
    mb.(i) <- Iss.read_mem machine (prep.p_mailbox_base + i)
  done;
  if prep.p_n_slots = 0 then mb.(0) <- 0;
  let result = Lp_ir.Interp.run prep.p_mini in
  (* Write results back to shared memory. *)
  List.iter
    (fun (name, img) ->
      if name = mailbox_name then
        for i = 0 to prep.p_n_slots - 1 do
          Iss.write_mem machine (prep.p_mailbox_base + i) img.(i)
        done
      else
        Iss.write_mem_block machine
          (Hashtbl.find prep.p_array_base name)
          img)
    result.Lp_ir.Interp.final_arrays;
  List.iter (fun v -> Iss.push_output machine v) result.Lp_ir.Interp.outputs;
  result

type accounting = {
  mutable asic_energy : float;
  mutable asic_invocations : int;
}

(* The uP-side memory system as bulk ISS hooks. The block engine hands
   over whole access runs — one I-fetch run per basic block, one
   D-access drain per block — and the hooks settle each run with as few
   cache probes as possible: sequential fetches go through
   [Cache.read_run] (one probe per line), and the D-access buffer is
   walked once, coalescing maximal runs of same-kind accesses that stay
   on one cache line (or inside the uncached mailbox window) into a
   single [Cache.access_run] / mailbox charge. Accounting is identical
   to per-access hooks: runs are consecutive subsequences of the
   per-stream access order, and the I- and D-streams touch disjoint
   caches, so batching never reorders what a cache observes.

   Exposed (with the mailbox window defaulting to empty) so the
   differential tests can wire the production memory system to both the
   block engine and the per-instruction reference engine. *)
let memory_hooks ~icache ~dcache ~mem ?(mailbox_lo = 0) ?(mailbox_hi = 0)
    ~acall () =
  let charge_run (re : Cache.run_event) =
    if re.Cache.run_misses = 0 && re.Cache.run_through_words = 0 then 0
    else begin
      Memory.mem_read_words mem re.Cache.run_fill_words;
      Memory.bus_read_words mem re.Cache.run_fill_words;
      let wr = re.Cache.run_writeback_words + re.Cache.run_through_words in
      Memory.mem_write_words mem wr;
      Memory.bus_write_words mem wr;
      Memory.miss_penalty_run_of mem ~misses:re.Cache.run_misses
        ~words:re.Cache.run_miss_words
    end
  in
  let ifetch_run addr n = charge_run (Cache.read_run icache addr n) in
  let in_mailbox w = w >= mailbox_lo && w < mailbox_hi in
  let word_of e = ((e - (e land 1)) - Isa.data_base_byte) lsr 2 in
  let daccess_run buf n =
    let stalls = ref 0 in
    let i = ref 0 in
    while !i < n do
      let e = Array.unsafe_get buf !i in
      let wbit = e land 1 in
      let addr = e - wbit in
      let j = ref (!i + 1) in
      let stop = ref false in
      if in_mailbox ((addr - Isa.data_base_byte) lsr 2) then begin
        (* Uncached handover words: straight over the bus, one
           single-word transaction each. *)
        while (not !stop) && !j < n do
          let e' = Array.unsafe_get buf !j in
          if e' land 1 = wbit && in_mailbox (word_of e') then incr j
          else stop := true
        done;
        let k = !j - !i in
        if wbit = 1 then begin
          Memory.mem_write_words mem k;
          Memory.bus_write_words mem k
        end
        else begin
          Memory.mem_read_words mem k;
          Memory.bus_read_words mem k
        end;
        stalls := !stalls + (k * Memory.miss_penalty_cycles_of mem ~words:1)
      end
      else begin
        let line = Cache.line_of dcache addr in
        while (not !stop) && !j < n do
          let e' = Array.unsafe_get buf !j in
          if
            e' land 1 = wbit
            && Cache.line_of dcache (e' - wbit) = line
            && not (in_mailbox (word_of e'))
          then incr j
          else stop := true
        done;
        let k = !j - !i in
        stalls :=
          !stalls + charge_run (Cache.access_run dcache addr ~write:(wbit = 1) k)
      end;
      i := !j
    done;
    !stalls
  in
  { Iss.ifetch_run; daccess_run; acall }

let run ?(config = default_config) ?(tasks = []) (p : program) =
  let stubs =
    List.map
      (fun t ->
        {
          Compiler.acall_id = t.acall_id;
          top_sids = List.map (fun s -> s.sid) t.stmts;
          use_scalars = t.use_scalars;
          gen_scalars = t.gen_scalars;
        })
      tasks
  in
  let prog, layout = Compiler.compile ~stubs ~peephole:config.peephole p in
  let platform = config.platform in
  let clock_period_s = Platform.clock_period_s platform in
  (* Core (and SRAM) dynamic energy scales as Vdd^2 relative to the
     nominal supply the instruction-level model was characterised at;
     exactly 1.0 at sparclite, where every product below is
     bit-identical to the pre-platform code. *)
  let energy_scale = Lp_iss.Energy_model.core_energy_scale platform in
  let icache = Cache.create ~energy_scale config.icache in
  let dcache = Cache.create ~energy_scale config.dcache in
  let mem =
    Memory.create
      ~first_word_latency:platform.Platform.mem_first_word_latency
      ~access_energy_j:platform.Platform.mem_access_energy_j
      ~standby_power_w:platform.Platform.mem_standby_power_w ()
  in
  let acc = { asic_energy = 0.0; asic_invocations = 0 } in
  (* Word-address window of the uncached mailbox region. *)
  let mailbox_lo = layout.Compiler.mailbox_base in
  let mailbox_hi = layout.Compiler.stack_top - Compiler.stack_words in
  (* Per-task invariants (mailbox geometry, mini program, scratch
     images, burst counts) are prepared once; acall dispatch is a
     hashtable probe instead of the seed's [List.find_opt] +
     [List.assoc] walks per invocation. *)
  let array_base = Hashtbl.create 16 in
  List.iter
    (fun (name, base) -> Hashtbl.replace array_base name base)
    layout.Compiler.array_bases;
  let prepared = Hashtbl.create 8 in
  List.iter
    (fun t ->
      Hashtbl.replace prepared t.acall_id (prepare_task p layout array_base t))
    tasks;
  let prep_of_id k =
    match Hashtbl.find_opt prepared k with
    | Some prep -> prep
    | None -> raise (Iss.Runtime_error (Printf.sprintf "unknown acall %d" k))
  in
  let acall machine k =
    let prep = prep_of_id k in
    let task = prep.ptask in
    acc.asic_invocations <- acc.asic_invocations + 1;
    (* Coherence: push dirty uP lines to memory before the ASIC reads
       it, and invalidate so the uP re-reads what the ASIC wrote. *)
    let wb = Cache.flush dcache in
    Memory.mem_write_words mem wb;
    Memory.bus_write_words mem wb;
    let handshake_cycles = Memory.miss_penalty_cycles_of mem ~words:wb in
    let result = run_asic_cluster prep machine in
    (* Execution cycles: schedule length times profiled iterations,
       scaled by the core's clock ratio (an FSM core clocks at its
       slowest functional unit). *)
    let exec_cycles =
      List.fold_left
        (fun cyc (anchor, len) ->
          cyc + (len * Lp_ir.Interp.ex_times result anchor))
        0 task.seg_lengths
    in
    let exec_cycles =
      int_of_float (Float.ceil (float_of_int exec_cycles *. task.clock_scale))
    in
    (* Burst copies: small shared arrays move through the local buffer
       once per invocation, page-mode (one word per cycle + startup). *)
    let burst_in = prep.p_burst_in in
    let burst_out = prep.p_burst_out in
    Memory.mem_read_words mem burst_in;
    Memory.bus_read_words mem burst_in;
    Memory.mem_write_words mem burst_out;
    Memory.bus_write_words mem burst_out;
    let burst_cycles =
      (if burst_in > 0 then burst_in + 8 else 0)
      + if burst_out > 0 then burst_out + 8 else 0
    in
    (* Oversized shared arrays stream word by word at their dynamic
       access counts; private arrays live entirely in the local buffer
       (their traffic is covered by the memory-port power). *)
    let stream_words get =
      List.fold_left
        (fun acc (a, n) ->
          if Hashtbl.mem prep.p_stream a then acc + n else acc)
        0 (get result)
    in
    let stream_in = stream_words (fun r -> r.Lp_ir.Interp.array_reads) in
    let stream_out = stream_words (fun r -> r.Lp_ir.Interp.array_writes) in
    Memory.mem_read_words mem stream_in;
    Memory.bus_read_words mem stream_in;
    Memory.mem_write_words mem stream_out;
    Memory.bus_write_words mem stream_out;
    (* Mailbox handover on the ASIC side: every slot word is read (gen
       scalars must round-trip), the gen words are written back. *)
    let n_use = prep.p_n_slots in
    let n_gen = prep.p_n_gen in
    Memory.mem_read_words mem n_use;
    Memory.bus_read_words mem n_use;
    Memory.mem_write_words mem n_gen;
    Memory.bus_write_words mem n_gen;
    (* Streamed and mailbox words are single-word non-burst bus
       transactions: arbitration + non-page DRAM + coherence, every
       word. *)
    let word_cost = config.asic_word_cycles in
    let total_cycles =
      handshake_cycles + exec_cycles + burst_cycles
      + (word_cost * (stream_in + stream_out + n_use + n_gen))
    in
    Iss.add_asic_cycles machine total_cycles;
    acc.asic_energy <-
      acc.asic_energy
      +. (task.power_w *. float_of_int total_cycles *. clock_period_s)
  in
  let hooks = memory_hooks ~icache ~dcache ~mem ~mailbox_lo ~mailbox_hi ~acall () in
  let machine = Iss.create ~fuel:config.fuel prog hooks in
  List.iter
    (fun (base, img) -> Iss.load_data machine base img)
    (Compiler.initial_data p layout);
  Iss.run machine;
  let r = Iss.result machine in
  let mem_totals = Memory.totals mem in
  let run_s =
    float_of_int (r.Iss.up_cycles + r.Iss.stall_cycles + r.Iss.asic_cycles)
    *. clock_period_s
  in
  {
    outputs = r.Iss.outputs;
    up_cycles = r.Iss.up_cycles;
    stall_cycles = r.Iss.stall_cycles;
    asic_cycles = r.Iss.asic_cycles;
    instr_count = r.Iss.instr_count;
    icache_j = (Cache.stats icache).Cache.energy_j;
    dcache_j = (Cache.stats dcache).Cache.energy_j;
    mem_j =
      mem_totals.Memory.mem_access_energy_j
      +. Memory.standby_energy_of mem ~runtime_s:run_s;
    bus_j = mem_totals.Memory.bus_energy_j;
    up_j = r.Iss.up_energy_j *. energy_scale;
    asic_j = acc.asic_energy;
    icache_stats = Cache.stats icache;
    dcache_stats = Cache.stats dcache;
    mem_totals;
    asic_invocations = acc.asic_invocations;
    class_counts = r.Iss.class_counts;
  }

let pp_report ppf r =
  let u = Lp_tech.Units.pp_energy in
  Format.fprintf ppf
    "@[<v>i-cache %a | d-cache %a | mem %a | bus %a | uP %a | ASIC %a | \
     total %a@,\
     cycles: uP %d + stall %d + ASIC %d = %d (%d instrs, %d acalls)@]" u
    r.icache_j u r.dcache_j u r.mem_j u r.bus_j u r.up_j u r.asic_j u
    (total_energy_j r) r.up_cycles r.stall_cycles r.asic_cycles
    (total_cycles r) r.instr_count r.asic_invocations
