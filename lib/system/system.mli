(** Whole-system co-simulation: uP core + instruction cache + data
    cache + main memory + shared bus + optional ASIC cores.

    This produces the per-core energy and cycle numbers of the paper's
    Table 1. Every word that moves is charged where it physically moves:
    instruction fetches in the i-cache, data accesses in the d-cache,
    line fills/write-backs and uncached mailbox words in the memory and
    bus accounts, instruction execution in the uP core, and ASIC-cluster
    execution in the ASIC account.

    Architecture (paper Fig. 2a): uP and ASIC communicate through the
    shared memory. Scalars are handed over through a per-cluster
    {e mailbox} region which is uncached (so handovers really cross the
    bus); before an ASIC core runs, the d-cache is flushed so the ASIC
    sees, and leaves behind, a coherent main memory.

    Arrays private to the ASIC (never touched by software clusters) live
    in ASIC-local buffers: their element traffic is covered by the
    memory-port power of the ASIC datapath and does not hit the shared
    memory. Shared arrays are streamed over the bus at their dynamic
    access counts. *)

type config = {
  icache : Lp_cache.Cache.config;
  dcache : Lp_cache.Cache.config;
  fuel : int;
  buffer_capacity_words : int;
      (** ASIC-local SRAM capacity: a shared array no larger than this
          is burst-copied in/out once per invocation; a larger one is
          streamed word by word (default 2048 words = 8 KiB) *)
  asic_word_cycles : int;
      (** cost of one ASIC single-word shared-memory transaction:
          bus arbitration + non-page-mode DRAM access + coherence
          snoop — unlike the uP's page-mode line bursts (default 12) *)
  peephole : bool;
      (** run the assembly peephole optimiser (default off: software
          code quality is an experimental axis of its own — see the
          bench harness's ablations) *)
  platform : Lp_tech.Platform.t;
      (** the uP platform: core supply/clock, memory latency/energy and
          the Vdd^2 energy scale of core + caches (default
          {!Lp_tech.Platform.sparclite}, under which the simulation is
          bit-identical to the pre-platform code). The [icache]/[dcache]
          fields above stay the authority on cache geometry so explicit
          cache overrides can refine a platform; use
          {!config_of_platform} to sync them from a platform. *)
}

val default_config : config

val config_of_platform : ?base:config -> Lp_tech.Platform.t -> config
(** [config_of_platform ?base p] is [base] (default {!default_config})
    running on [p]: platform field set and cache geometries copied from
    the platform. *)

(** One ASIC-mapped cluster, as the partitioner hands it over. *)
type asic_task = {
  acall_id : int;
  stmts : Lp_ir.Ast.stmt list;  (** cluster body (straight from the IR) *)
  use_scalars : string list;  (** mailbox in *)
  gen_scalars : string list;  (** mailbox out *)
  private_arrays : string list;  (** held in ASIC-local buffers *)
  buffer_in_arrays : (string * int) list;
      (** shared arrays (name, words) burst-copied into the local
          buffer at invocation start *)
  buffer_out_arrays : (string * int) list;
      (** shared arrays burst-copied back at completion *)
  stream_arrays : string list;
      (** shared arrays too large to buffer: every dynamic access is a
          single-word bus transaction *)
  power_w : float;  (** average power of the serving core *)
  clock_scale : float;
      (** core clock period relative to the system clock: an FSM core
          clocks at its slowest functional unit + mux/control margin *)
  seg_lengths : (int * int) list;
      (** (anchor sid, schedule length) per segment: cycles of one
          segment execution *)
}

type report = {
  outputs : int list;
  up_cycles : int;
  stall_cycles : int;
  asic_cycles : int;
  instr_count : int;
  icache_j : float;
  dcache_j : float;
  mem_j : float;  (** memory access + standby *)
  bus_j : float;
  up_j : float;
  asic_j : float;
  icache_stats : Lp_cache.Cache.stats;
  dcache_stats : Lp_cache.Cache.stats;
  mem_totals : Lp_mem.Memory.totals;
  asic_invocations : int;
  class_counts : (Lp_isa.Isa.opclass * int) list;
      (** executed instructions per opcode class — the instruction-level
          power model's native granularity (Tiwari-style) *)
}

val total_energy_j : report -> float
val total_cycles : report -> int

val runtime_s : ?platform:Lp_tech.Platform.t -> report -> float
(** Wall-clock duration of the run at the platform's clock (default
    sparclite, 20 MHz). *)

val memory_hooks :
  icache:Lp_cache.Cache.t ->
  dcache:Lp_cache.Cache.t ->
  mem:Lp_mem.Memory.t ->
  ?mailbox_lo:int ->
  ?mailbox_hi:int ->
  acall:(Lp_iss.Iss.t -> int -> unit) ->
  unit ->
  Lp_iss.Iss.hooks
(** The uP-side memory system as bulk ISS hooks: sequential instruction
    fetches settle with one cache probe per line, and the D-access
    buffer is coalesced into maximal same-line same-kind runs (accesses
    inside the uncached mailbox word-address window
    [\[mailbox_lo, mailbox_hi)], default empty, go straight over the
    bus). Accounting is access-for-access identical to per-word hooks;
    exposed so the differential tests can wire the production memory
    system to both ISS engines. *)

val run : ?config:config -> ?tasks:asic_task list -> Lp_ir.Ast.program -> report
(** [run p] compiles and simulates [p]. With [tasks], the corresponding
    clusters execute on ASIC cores ([Acall] handshake); without, the
    whole program runs in software — the paper's initial design "I".

    The observable outputs are independent of the partitioning; the
    differential tests rely on that. *)

val pp_report : Format.formatter -> report -> unit
