module Cache = Lp_cache.Cache
module Compiler = Lp_compiler.Compiler
module Iss = Lp_iss.Iss

type event = Ifetch of int | Dread of int | Dwrite of int

type t = { events : event Lp_graph.Vec.t }

let capture ?(fuel = 200_000_000) p =
  let trace = { events = Lp_graph.Vec.create () } in
  let prog, layout = Compiler.compile p in
  let push e =
    Lp_graph.Vec.push trace.events e;
    0 (* no stalls: the trace tool has no memory system *)
  in
  (* Per-word hooks over the block engine's bulk interface: runs are
     expanded back into one event per access, in program order, so the
     captured stream is identical to per-instruction execution. *)
  let hooks =
    Iss.word_hooks
      ~ifetch:(fun a -> push (Ifetch a))
      ~dread:(fun a -> push (Dread a))
      ~dwrite:(fun a -> push (Dwrite a))
      ~acall:(fun _ _ ->
        raise (Iss.Runtime_error "trace capture is software-only"))
      ()
  in
  let m = Iss.create ~fuel prog hooks in
  List.iter
    (fun (base, img) -> Iss.load_data m base img)
    (Compiler.initial_data p layout);
  Iss.run m;
  trace

let length t = Lp_graph.Vec.length t.events

let events t = Lp_graph.Vec.to_array t.events

let replay t ~icache ~dcache =
  let ic = Cache.create icache in
  let dc = Cache.create dcache in
  Lp_graph.Vec.iter
    (fun e ->
      match e with
      | Ifetch a -> ignore (Cache.read ic a)
      | Dread a -> ignore (Cache.read dc a)
      | Dwrite a -> ignore (Cache.write dc a))
    t.events;
  (Cache.stats ic, Cache.stats dc)

let sweep_dcache t configs =
  List.map
    (fun cfg ->
      let dc = Cache.create cfg in
      Lp_graph.Vec.iter
        (fun e ->
          match e with
          | Ifetch _ -> ()
          | Dread a -> ignore (Cache.read dc a)
          | Dwrite a -> ignore (Cache.write dc a))
        t.events;
      (cfg, Cache.stats dc))
    configs

let miss_rate (s : Cache.stats) =
  let accesses = s.Cache.reads + s.Cache.writes in
  if accesses = 0 then 0.0
  else
    float_of_int (s.Cache.read_misses + s.Cache.write_misses)
    /. float_of_int accesses
