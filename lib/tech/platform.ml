(* A named execution platform: the uP side of the system as data.

   Until PR 9 the SPARClite-class platform of the paper was an ambient
   constant — [Cmos6.vdd_v]/[Cmos6.clock_mhz] globals, the default
   cache geometries, the DRAM latency baked into [Lp_mem.Memory]. A
   platform record bundles exactly those knobs so the partitioning flow
   can treat "which core" as one more axis next to "which partition".
   The [sparclite] preset reproduces the former globals bit-for-bit;
   with it every scale factor below is exactly 1.0 and the simulators
   are byte-identical to the pre-platform code. *)

type cache_geom = {
  geom_size_bytes : int;
  geom_line_bytes : int;
  geom_assoc : int;
  geom_write_through : bool;
}

type t = {
  name : string;
  core_vdd_v : float;
  clock_mhz : float;
  peak_clock_mhz : float;
      (* rated frequency of the core at the nominal process Vdd
         ([Cmos6.vdd_v]); the voltage-delay curve scales it down at
         lower supplies *)
  icache : cache_geom;
  dcache : cache_geom;
  mem_first_word_latency : int;  (* uP cycles to the first word of a burst *)
  mem_access_energy_j : float;  (* per word read or written *)
  mem_standby_power_w : float;
}

(* --- derived quantities -------------------------------------------- *)

let clock_period_s p = Units.mhz_period_s p.clock_mhz

(* Core dynamic energy scales as Vdd^2 relative to the nominal supply
   the per-instruction and SRAM energies were characterised at. *)
let energy_scale p = Cmos6.voltage_energy_ratio p.core_vdd_v

(* Highest clock this platform's core sustains at its supply: the rated
   frequency divided by the alpha-power delay stretch. *)
let max_clock_mhz p =
  p.peak_clock_mhz /. Cmos6.voltage_delay_ratio p.core_vdd_v

(* --- validity ------------------------------------------------------ *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let geom_valid g =
  is_pow2 g.geom_size_bytes && is_pow2 g.geom_line_bytes && g.geom_assoc > 0
  && g.geom_line_bytes >= 4
  && g.geom_size_bytes >= g.geom_line_bytes * g.geom_assoc
  && g.geom_size_bytes mod (g.geom_line_bytes * g.geom_assoc) = 0

let validate p =
  if p.name = "" then Error "platform name must be non-empty"
  else if p.core_vdd_v <= Cmos6.vt_v then
    Error
      (Printf.sprintf "core vdd %.3g V is at or below Vt (%.3g V)"
         p.core_vdd_v Cmos6.vt_v)
  else if p.clock_mhz <= 0.0 then Error "clock must be positive"
  else if p.peak_clock_mhz <= 0.0 then Error "peak clock must be positive"
  else if p.clock_mhz > max_clock_mhz p *. (1.0 +. 1e-9) then
    Error
      (Printf.sprintf
         "%.4g MHz exceeds the %.4g MHz ceiling at %.3g V (peak %.4g MHz \
          at %.3g V)"
         p.clock_mhz (max_clock_mhz p) p.core_vdd_v p.peak_clock_mhz
         Cmos6.vdd_v)
  else if not (geom_valid p.icache) then Error "invalid icache geometry"
  else if not (geom_valid p.dcache) then Error "invalid dcache geometry"
  else if p.mem_first_word_latency < 0 then
    Error "memory latency must be >= 0"
  else if p.mem_access_energy_j < 0.0 then
    Error "memory access energy must be >= 0"
  else if p.mem_standby_power_w < 0.0 then
    Error "memory standby power must be >= 0"
  else Ok p

let valid p = Result.is_ok (validate p)

let equal a b =
  a.name = b.name
  && a.core_vdd_v = b.core_vdd_v
  && a.clock_mhz = b.clock_mhz
  && a.peak_clock_mhz = b.peak_clock_mhz
  && a.icache = b.icache && a.dcache = b.dcache
  && a.mem_first_word_latency = b.mem_first_word_latency
  && a.mem_access_energy_j = b.mem_access_energy_j
  && a.mem_standby_power_w = b.mem_standby_power_w

(* --- the registry -------------------------------------------------- *)

(* The paper's platform, verbatim: 0.8u, 3.3 V, 20 MHz, 2 KiB caches
   (direct-mapped I, 2-way D, both write-back), 4-cycle DRAM first-word
   latency, 12 nJ/word accesses, 1.5 mW refresh. Every field equals the
   former global it replaces, so this preset is the identity. *)
let sparclite =
  {
    name = "sparclite";
    core_vdd_v = Cmos6.vdd_v;
    clock_mhz = Cmos6.clock_mhz;
    peak_clock_mhz = Cmos6.clock_mhz;
    icache =
      {
        geom_size_bytes = 2048;
        geom_line_bytes = 16;
        geom_assoc = 1;
        geom_write_through = false;
      };
    dcache =
      {
        geom_size_bytes = 2048;
        geom_line_bytes = 16;
        geom_assoc = 2;
        geom_write_through = false;
      };
    mem_first_word_latency = 4;
    mem_access_energy_j = Cmos6.dram_access_energy_j;
    mem_standby_power_w = Cmos6.dram_standby_power_w;
  }

(* A low-voltage embedded core: 2.4 V supply (0.53x dynamic energy),
   clocked at 10 MHz under the ~11.3 MHz alpha-power ceiling, with
   quarter-size caches. DRAM first-word time (~200 ns) is 2 of its
   slower cycles. *)
let tiny =
  {
    sparclite with
    name = "tiny";
    core_vdd_v = 2.4;
    clock_mhz = 10.0;
    peak_clock_mhz = Cmos6.clock_mhz;
    icache = { sparclite.icache with geom_size_bytes = 512 };
    dcache = { sparclite.dcache with geom_size_bytes = 512 };
    mem_first_word_latency = 2;
  }

(* A mid-range core: same supply, a faster 40 MHz speed grade, doubled
   caches; DRAM latency doubles in cycles because the cycles halved. *)
let mid =
  {
    sparclite with
    name = "mid";
    clock_mhz = 40.0;
    peak_clock_mhz = 40.0;
    icache = { sparclite.icache with geom_size_bytes = 4096 };
    dcache = { sparclite.dcache with geom_size_bytes = 4096 };
    mem_first_word_latency = 8;
  }

(* A workstation-class core: 80 MHz, 8 KiB caches with 32-byte lines
   (4-way D); the memory wall shows — 16 cycles to the first word. *)
let large =
  {
    sparclite with
    name = "large";
    clock_mhz = 80.0;
    peak_clock_mhz = 80.0;
    icache =
      {
        geom_size_bytes = 8192;
        geom_line_bytes = 32;
        geom_assoc = 2;
        geom_write_through = false;
      };
    dcache =
      {
        geom_size_bytes = 8192;
        geom_line_bytes = 32;
        geom_assoc = 4;
        geom_write_through = false;
      };
    mem_first_word_latency = 16;
  }

let presets = [ tiny; sparclite; mid; large ]
let names = List.map (fun p -> p.name) presets
let find name = List.find_opt (fun p -> p.name = name) presets
let default = sparclite

(* --- parse/print --------------------------------------------------- *)

(* Spec syntax: NAME[:key=value,...] — a registry name optionally
   refined by inline overrides, e.g.
   [sparclite:vdd=2.7,clock=12,icache=4096/16/2/wb]. The parser reports
   which keys were overridden so the protocol layer can detect a spec
   override and a raw request field fighting over the same knob. *)

let geom_to_string g =
  Printf.sprintf "%d/%d/%d/%s" g.geom_size_bytes g.geom_line_bytes
    g.geom_assoc
    (if g.geom_write_through then "wt" else "wb")

let geom_of_string s =
  match String.split_on_char '/' s with
  | [ size; line; assoc ] | [ size; line; assoc; _ ] as parts -> (
      let policy =
        match parts with
        | [ _; _; _; "wb" ] | [ _; _; _ ] -> Ok false
        | [ _; _; _; "wt" ] -> Ok true
        | _ -> Error (Printf.sprintf "bad cache policy in %S (wb|wt)" s)
      in
      match
        (int_of_string_opt size, int_of_string_opt line,
         int_of_string_opt assoc, policy)
      with
      | Some sz, Some ln, Some a, Ok wt ->
          let g =
            {
              geom_size_bytes = sz;
              geom_line_bytes = ln;
              geom_assoc = a;
              geom_write_through = wt;
            }
          in
          if geom_valid g then Ok g
          else Error (Printf.sprintf "invalid cache geometry %S" s)
      | _ -> Error (Printf.sprintf "bad cache geometry %S (SIZE/LINE/ASSOC[/wb|wt])" s))
  | _ ->
      Error (Printf.sprintf "bad cache geometry %S (SIZE/LINE/ASSOC[/wb|wt])" s)

let override_keys =
  [
    "vdd"; "clock"; "peak"; "icache"; "dcache"; "mem_latency";
    "mem_access_nj"; "mem_standby_mw";
  ]

let apply_override p (key, value) =
  let float_v what =
    match float_of_string_opt value with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s needs a number, got %S" what value)
  in
  let int_v what =
    match int_of_string_opt value with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s needs an integer, got %S" what value)
  in
  match key with
  | "vdd" -> Result.map (fun v -> { p with core_vdd_v = v }) (float_v key)
  | "clock" -> Result.map (fun v -> { p with clock_mhz = v }) (float_v key)
  | "peak" -> Result.map (fun v -> { p with peak_clock_mhz = v }) (float_v key)
  | "icache" -> Result.map (fun g -> { p with icache = g }) (geom_of_string value)
  | "dcache" -> Result.map (fun g -> { p with dcache = g }) (geom_of_string value)
  | "mem_latency" ->
      Result.map (fun v -> { p with mem_first_word_latency = v }) (int_v key)
  | "mem_access_nj" ->
      Result.map
        (fun v -> { p with mem_access_energy_j = Units.nj v })
        (float_v key)
  | "mem_standby_mw" ->
      Result.map
        (fun v -> { p with mem_standby_power_w = v *. 1e-3 })
        (float_v key)
  | other ->
      Error
        (Printf.sprintf "unknown platform key %S (known: %s)" other
           (String.concat ", " override_keys))

let of_spec spec =
  let base, overrides =
    match String.index_opt spec ':' with
    | None -> (spec, [])
    | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1)
          |> String.split_on_char ',' |> List.filter (fun s -> s <> "") )
  in
  match find base with
  | None ->
      Error
        (Printf.sprintf "unknown platform %S (known: %s)" base
           (String.concat ", " names))
  | Some p ->
      let rec apply p keys = function
        | [] -> Ok (p, List.rev keys)
        | kv :: rest -> (
            match String.index_opt kv '=' with
            | None ->
                Error (Printf.sprintf "platform override %S is not key=value" kv)
            | Some i -> (
                let key = String.sub kv 0 i in
                let value =
                  String.sub kv (i + 1) (String.length kv - i - 1)
                in
                match apply_override p (key, value) with
                | Error e -> Error e
                | Ok p -> apply p (key :: keys) rest))
      in
      Result.bind (apply p [] overrides) (fun (p, keys) ->
          (* An overridden platform is a different platform: stamp the
             canonical spec into the name so fingerprints, journal
             scopes and payload echoes all distinguish it. *)
          let p =
            if keys = [] then p
            else { p with name = base ^ ":" ^ String.concat "," overrides }
          in
          Result.map (fun p -> (p, keys)) (validate p))

let to_spec p = p.name

let pp ppf p =
  Format.fprintf ppf
    "%s: %.2g V @ %g MHz (peak %g), I$ %s, D$ %s, mem %d cyc / %g nJ / %g mW"
    p.name p.core_vdd_v p.clock_mhz p.peak_clock_mhz
    (geom_to_string p.icache) (geom_to_string p.dcache)
    p.mem_first_word_latency
    (p.mem_access_energy_j /. 1e-9)
    (p.mem_standby_power_w /. 1e-3)
