(** Named execution platforms: the uP side of the system as data.

    A platform bundles the knobs the DAC'99 paper fixed to one
    SPARClite-class configuration — core supply and clock, I/D cache
    geometry, and the main-memory latency/energy parameters — so the
    flow can optimise over platforms the same way it optimises over
    partitions. The {!sparclite} preset carries exactly the values that
    used to be ambient ({!Cmos6} globals, the default cache configs,
    [Lp_mem.Memory]'s built-in latency): at that platform every derived
    scale factor is exactly [1.0] and the simulators behave
    bit-identically to the pre-platform code. *)

type cache_geom = {
  geom_size_bytes : int;
  geom_line_bytes : int;
  geom_assoc : int;
  geom_write_through : bool;
}

type t = {
  name : string;
  core_vdd_v : float;
  clock_mhz : float;
  peak_clock_mhz : float;
      (** rated frequency at the nominal process supply {!Cmos6.vdd_v};
          lowering [core_vdd_v] lowers the sustainable clock along the
          alpha-power delay curve (see {!max_clock_mhz}) *)
  icache : cache_geom;
  dcache : cache_geom;
  mem_first_word_latency : int;
      (** uP cycles to the first word of a memory burst *)
  mem_access_energy_j : float;  (** per word read or written *)
  mem_standby_power_w : float;
}

val clock_period_s : t -> float

val energy_scale : t -> float
(** Dynamic-energy multiplier for the core and its SRAMs relative to
    the nominal supply: [(core_vdd_v / Cmos6.vdd_v)^2]. Exactly [1.0]
    for {!sparclite}. *)

val max_clock_mhz : t -> float
(** Frequency ceiling at [core_vdd_v]:
    [peak_clock_mhz / Cmos6.voltage_delay_ratio core_vdd_v]. *)

val validate : t -> (t, string) result
(** Structural and physical validity: positive clocks, supply above Vt,
    power-of-two cache geometries, and [clock_mhz <= max_clock_mhz]
    (within epsilon). *)

val valid : t -> bool
val equal : t -> t -> bool

(** {1 Registry} *)

val sparclite : t
(** The paper's platform; the default everywhere. *)

val tiny : t
(** 2.4 V / 10 MHz, 512 B caches — the low-power corner. *)

val mid : t
(** 3.3 V / 40 MHz, 4 KiB caches. *)

val large : t
(** 3.3 V / 80 MHz, 8 KiB caches with 32 B lines. *)

val presets : t list
val names : string list
val find : string -> t option
val default : t

(** {1 Parse / print} *)

val of_spec : string -> (t * string list, string) result
(** [of_spec "NAME[:key=value,...]"] resolves a registry name and
    applies inline overrides, validating the result. Returns the
    platform plus the list of overridden keys (so callers can detect
    collisions with other override channels). Keys: [vdd], [clock],
    [peak], [icache]/[dcache] (as [SIZE/LINE/ASSOC[/wb|wt]]),
    [mem_latency], [mem_access_nj], [mem_standby_mw]. An overridden
    platform's [name] becomes the canonical spec string, so it compares
    (and fingerprints) as a distinct platform. *)

val to_spec : t -> string
(** The spec string that reproduces [t] ([name], which embeds any
    inline overrides applied by {!of_spec}). *)

val pp : Format.formatter -> t -> unit
