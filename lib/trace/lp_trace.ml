type phase = Begin | End | Counter

type event = {
  ph : phase;
  name : string;
  ts_s : float;
  dom : int;
  value : int;
}

(* Minimal JSON string escaping — enough for arbitrary span names
   without pulling a JSON dependency into this leaf library. Multi-byte
   UTF-8 passes through untouched (JSON allows raw non-ASCII). *)
let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let event_json e =
  let buf = Buffer.create 96 in
  let ph = match e.ph with Begin -> "B" | End -> "E" | Counter -> "C" in
  Buffer.add_string buf {|{"ph":"|};
  Buffer.add_string buf ph;
  Buffer.add_string buf {|","name":|};
  escape_into buf e.name;
  Buffer.add_string buf (Printf.sprintf {|,"dom":%d,"ts":%.6f|} e.dom e.ts_s);
  (match e.ph with
  | Counter -> Buffer.add_string buf (Printf.sprintf {|,"value":%d|} e.value)
  | Begin | End -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

type sink = { emit : event -> unit; close : unit -> unit }

let null_sink () = { emit = ignore; close = ignore }

(* Channel-backed sinks share one writer: a mutex serialises lines so
   concurrent domains never interleave within a line. *)
let channel_sink ?(close_out_at_end = false) oc =
  let m = Mutex.create () in
  let closed = ref false in
  let emit e =
    Mutex.lock m;
    if not !closed then begin
      output_string oc (event_json e);
      output_char oc '\n'
    end;
    Mutex.unlock m
  in
  let close () =
    Mutex.lock m;
    if not !closed then begin
      closed := true;
      if close_out_at_end then close_out oc else flush oc
    end;
    Mutex.unlock m
  in
  { emit; close }

let stderr_sink () = channel_sink stderr

let file_sink path =
  channel_sink ~close_out_at_end:true (open_out_bin path)

let memory_sink () =
  let m = Mutex.create () in
  let acc = ref [] in
  let emit e =
    Mutex.lock m;
    acc := e :: !acc;
    Mutex.unlock m
  in
  let events () =
    Mutex.lock m;
    let l = List.rev !acc in
    Mutex.unlock m;
    l
  in
  ({ emit; close = ignore }, events)

(* A routed sink demultiplexes by emitting domain: each domain may
   register a private handler, and events from domains with no handler
   are dropped. This is what lets one process-wide sink serve many
   concurrent consumers — the service engine registers a handler on the
   domain computing a streamed request, re-emits its stage spans to the
   client, and unregisters, without ever seeing another request's
   events. The handler table is tiny (one entry per in-flight streamed
   request), so the per-event cost is one mutex'd hash lookup. *)
let routed_sink () =
  let m = Mutex.create () in
  let handlers : (int, event -> unit) Hashtbl.t = Hashtbl.create 8 in
  let emit e =
    let h = Mutex.protect m (fun () -> Hashtbl.find_opt handlers e.dom) in
    (* Call outside the lock: handlers do I/O. *)
    match h with None -> () | Some f -> f e
  in
  let set_handler h =
    let dom = (Domain.self () :> int) in
    Mutex.protect m (fun () ->
        match h with
        | None -> Hashtbl.remove handlers dom
        | Some f -> Hashtbl.replace handlers dom f)
  in
  ({ emit; close = ignore }, set_handler)

(* The installed sink. An [Atomic] keeps the disabled fast path to a
   single load; sinks serialise internally so no further locking is
   needed on emission. *)
let current : sink option Atomic.t = Atomic.make None

let set_sink s = Atomic.set current s
let enabled () = Atomic.get current <> None

let close () =
  match Atomic.exchange current None with
  | None -> ()
  | Some s -> s.close ()

let now_s = Unix.gettimeofday
let dom_id () = (Domain.self () :> int)

let counter name value =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      s.emit { ph = Counter; name; ts_s = now_s (); dom = dom_id (); value }

let with_span name f =
  match Atomic.get current with
  | None -> f ()
  | Some s ->
      let dom = dom_id () in
      s.emit { ph = Begin; name; ts_s = now_s (); dom; value = 0 };
      Fun.protect
        ~finally:(fun () ->
          s.emit { ph = End; name; ts_s = now_s (); dom; value = 0 })
        f

let timed_span name f =
  match Atomic.get current with
  | None ->
      let t0 = now_s () in
      let v = f () in
      let t1 = now_s () in
      (v, t1 -. t0)
  | Some s ->
      let dom = dom_id () in
      let t0 = now_s () in
      s.emit { ph = Begin; name; ts_s = t0; dom; value = 0 };
      let finish () =
        let t1 = now_s () in
        s.emit { ph = End; name; ts_s = t1; dom; value = 0 };
        t1
      in
      (match f () with
      | v ->
          let t1 = finish () in
          (v, t1 -. t0)
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (finish ());
          Printexc.raise_with_backtrace e bt)
