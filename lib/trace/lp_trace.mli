(** Domain-safe span tracing for the partitioning pipeline.

    A process holds at most one {e sink}; when none is installed (the
    default) every tracing entry point reduces to a single atomic load
    and the traced code runs untouched — zero allocation, no
    synchronisation. With a sink installed, {!with_span} brackets a
    computation between a begin and an end event, {!counter} records a
    named integer sample, and every event carries the emitting domain
    so multi-domain traces can be demultiplexed offline.

    Two invariants hold by construction and are checked by the test
    suite's qcheck law:

    - {e balance}: every [`B] event is matched by exactly one [`E]
      event with the same name, even when the traced function raises;
    - {e nesting}: within one domain, spans close in LIFO order —
      the event stream of a single domain is a well-formed bracket
      sequence.

    The JSON-lines sink writes one object per line, modelled on the
    Chrome trace-event format:

    {[ {"ph":"B","name":"flow.profile","dom":0,"ts":1722950000.123456}
       {"ph":"E","name":"flow.profile","dom":0,"ts":1722950000.125001}
       {"ph":"C","name":"flow.candidates.pairs","dom":0,"ts":...,"value":38} ]}

    [ph] is ["B"] (span begin), ["E"] (span end) or ["C"] (counter);
    [ts] is [Unix.gettimeofday] seconds printed with microsecond
    precision; [dom] is the integer id of the emitting domain. *)

(** {1 Events} *)

type phase =
  | Begin  (** span opens *)
  | End  (** span closes (also on exception) *)
  | Counter  (** point sample carrying {!field-event.value} *)

type event = {
  ph : phase;  (** what kind of event this is *)
  name : string;  (** span or counter name, e.g. ["flow.cluster"] *)
  ts_s : float;  (** [Unix.gettimeofday] at emission, seconds *)
  dom : int;  (** id of the emitting domain *)
  value : int;  (** counter sample; [0] for [Begin]/[End] *)
}

val event_json : event -> string
(** One JSON object (no trailing newline) in the format above. The
    name is JSON-escaped; [ts] is printed as a fixed-point number with
    six fractional digits. *)

(** {1 Sinks} *)

type sink
(** A consumer of events. All sinks serialise concurrent emissions
    internally, so any domain may trace at any time. *)

val null_sink : unit -> sink
(** Accepts and discards everything. Useful to measure tracing's own
    overhead. *)

val stderr_sink : unit -> sink
(** Writes JSON lines to stderr; [close] flushes but leaves stderr
    open. *)

val file_sink : string -> sink
(** [file_sink path] truncates/creates [path] and writes JSON lines to
    it. [close] flushes and closes the file descriptor (idempotent).
    @raise Sys_error if the file cannot be opened. *)

val memory_sink : unit -> sink * (unit -> event list)
(** An in-memory collector for tests: the second component returns the
    events recorded so far, in emission order. *)

val routed_sink : unit -> sink * ((event -> unit) option -> unit)
(** A per-domain demultiplexer: [routed_sink ()] returns a sink plus a
    [set_handler] function. [set_handler (Some f)] registers [f] as the
    consumer of every event emitted {e by the calling domain};
    [set_handler None] unregisters it. Events from domains with no
    registered handler are dropped. This is how the service streams one
    request's stage spans to its client while other domains trace into
    the void: the domain computing the request registers a handler for
    itself around the flow run. Handlers are called outside the
    registry lock and may do I/O; a handler must not itself emit trace
    events (that would recurse). *)

val set_sink : sink option -> unit
(** Install ([Some s]) or remove ([None]) the process-wide sink. The
    previous sink, if any, is {e not} closed — the installer owns its
    lifecycle. *)

val enabled : unit -> bool
(** Whether a sink is currently installed. *)

val close : unit -> unit
(** Close the current sink (flushing file sinks) and uninstall it.
    No-op when tracing is disabled. *)

(** {1 Emission} *)

val now_s : unit -> float
(** The clock used for event timestamps ([Unix.gettimeofday]). *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] between a [Begin] and an [End]
    event named [name]. The [End] event is emitted even when [f]
    raises (the exception is re-raised). When tracing is disabled this
    is exactly [f ()]. *)

val timed_span : string -> (unit -> 'a) -> 'a * float
(** [timed_span name f] is {!with_span} that additionally returns the
    wall-clock duration of [f] in seconds — measured from the {e same}
    clock samples stamped into the emitted events, so a consumer
    summing [ts] deltas from a trace file reproduces the returned
    durations to timestamp precision. The duration is measured (and
    returned) even when tracing is disabled. *)

val counter : string -> int -> unit
(** [counter name v] emits a [Counter] event sampling [v]. No-op when
    tracing is disabled. *)
