(* The A/B comparator and its gate table: metric extraction from a
   BENCH document, regression arithmetic in both directions, the
   conditional corpus-speedup floor, and the corpus manifest's JSON
   round-trip. These run on synthetic documents — no benchmarking, so
   the suite stays milliseconds. *)

module J = Lp_json
module Compare = Lp_bench.Compare
module Gates = Lp_bench.Gates
module Corpus = Lp_bench.Corpus

let parse s =
  match J.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "test document does not parse: %s" e

let doc ~mips ~speedup_paper ~corpus_jobs ~corpus_speedup =
  parse
    (Printf.sprintf
       {|{"schema":"lowpart-bench-flow/1",
          "sim":{"iss_mips":%g},
          "stages":[{"name":"system-sim","ms_per_run":4.0},
                    {"name":"full-flow-seq","ms_per_run":20.0}],
          "flow":{"parallel_speedup_paper":%g,"memo_warm_speedup":2.0},
          "corpus":{"jobs":%d,"parallel_speedup":%g,"total_flow_ms":300.0}}|}
       mips speedup_paper corpus_jobs corpus_speedup)

let healthy = doc ~mips:250.0 ~speedup_paper:1.1 ~corpus_jobs:1 ~corpus_speedup:1.02

(* --- metric extraction -------------------------------------------- *)

let test_metrics () =
  let m = Compare.metrics_of_doc healthy in
  let get k = List.assoc k m in
  Alcotest.(check (float 1e-9)) "iss_mips" 250.0 (get "iss_mips");
  Alcotest.(check (float 1e-9)) "system_sim_ms" 4.0 (get "system_sim_ms");
  Alcotest.(check (float 1e-9))
    "parallel_speedup_paper" 1.1
    (get "parallel_speedup_paper");
  Alcotest.(check (float 1e-9))
    "parallel_speedup_corpus" 1.02
    (get "parallel_speedup_corpus");
  Alcotest.(check (float 1e-9)) "corpus_flow_ms" 300.0 (get "corpus_flow_ms");
  (* pre-corpus schema: the old flow.parallel_speedup key still reads
     as the paper metric, so old committed files remain comparable. *)
  let legacy =
    parse {|{"flow":{"parallel_speedup":1.3}}|} |> Compare.metrics_of_doc
  in
  Alcotest.(check (float 1e-9))
    "legacy parallel_speedup key" 1.3
    (List.assoc "parallel_speedup_paper" legacy);
  (* absent blocks simply yield no metric *)
  Alcotest.(check bool)
    "no corpus block, no corpus metric" false
    (List.mem_assoc "parallel_speedup_corpus"
       (Compare.metrics_of_doc (parse {|{"flow":{"memo_warm_speedup":2.0}}|})))

(* --- absolute gates ----------------------------------------------- *)

let test_absolute_gates () =
  Alcotest.(check (list string)) "healthy doc passes" []
    (Compare.check_doc healthy);
  let slow = doc ~mips:50.0 ~speedup_paper:1.1 ~corpus_jobs:1 ~corpus_speedup:1.0 in
  (match Compare.check_doc slow with
  | [ msg ] ->
      Alcotest.(check bool)
        "violation names iss_mips" true
        (String.length msg > 0
        && String.sub msg 0 8 = "iss_mips")
  | other ->
      Alcotest.failf "expected one iss_mips violation, got %d"
        (List.length other));
  (* conditional corpus floor: 0.5 is fine on a single-CPU host... *)
  let single = doc ~mips:250.0 ~speedup_paper:1.0 ~corpus_jobs:1 ~corpus_speedup:0.6 in
  Alcotest.(check (list string)) "0.6 passes at jobs=1" []
    (Compare.check_doc single);
  (* ...but the same number fails when the run recorded jobs > 1. *)
  let multi = doc ~mips:250.0 ~speedup_paper:1.0 ~corpus_jobs:4 ~corpus_speedup:0.6 in
  Alcotest.(check bool) "0.6 fails at jobs=4" true
    (Compare.check_doc multi <> []);
  let multi_ok = doc ~mips:250.0 ~speedup_paper:1.0 ~corpus_jobs:4 ~corpus_speedup:1.4 in
  Alcotest.(check (list string)) "1.4 passes at jobs=4" []
    (Compare.check_doc multi_ok);
  Alcotest.(check (float 1e-9)) "floor at jobs=1" 0.5
    (Gates.corpus_speedup_floor ~jobs:1);
  Alcotest.(check (float 1e-9)) "floor at jobs=8" 1.0
    (Gates.corpus_speedup_floor ~jobs:8);
  Alcotest.(check (float 1e-9)) "shared mips floor" Gates.iss_mips_floor 200.0

(* --- A/B regression ----------------------------------------------- *)

let test_diff () =
  let old_doc = healthy in
  (* within allowances: slightly slower, still passing *)
  let ok = doc ~mips:240.0 ~speedup_paper:1.05 ~corpus_jobs:1 ~corpus_speedup:1.0 in
  let r = Compare.diff ~old_doc ~new_doc:ok in
  Alcotest.(check (list string)) "small drift passes" [] r.Compare.failures;
  (* a floor metric collapsing past max_regress fires *)
  let bad = doc ~mips:110.0 ~speedup_paper:1.05 ~corpus_jobs:1 ~corpus_speedup:1.0 in
  let r = Compare.diff ~old_doc ~new_doc:bad in
  Alcotest.(check bool) "mips collapse fires (A/B + absolute)" true
    (List.length r.Compare.failures >= 1);
  (* losing a gated metric entirely is a failure... *)
  let gone = parse {|{"sim":{"iss_mips":250.0}}|} in
  let r = Compare.diff ~old_doc ~new_doc:gone in
  Alcotest.(check bool) "dropped gated metric fires" true
    (List.exists
       (fun f ->
         String.length f > 0 && String.index_opt f ':' <> None
         && String.sub f 0 (String.index f ':') = "parallel_speedup_corpus")
       r.Compare.failures);
  (* ...but a metric that only the NEW side has never fires. *)
  let old_small = parse {|{"sim":{"iss_mips":250.0}}|} in
  let r = Compare.diff ~old_doc:old_small ~new_doc:healthy in
  Alcotest.(check (list string)) "new-only metrics pass" []
    r.Compare.failures;
  (* render never raises and mentions every metric *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let rendered = Compare.render (Compare.diff ~old_doc ~new_doc:healthy) in
  Alcotest.(check bool) "render mentions iss_mips" true
    (contains rendered "iss_mips");
  Alcotest.(check bool) "clean report says so" true
    (contains rendered "all gates pass")

(* --- corpus manifest round-trip ----------------------------------- *)

let test_corpus_roundtrip () =
  let e =
    {
      Corpus.spec = "gen:paper:1";
      class_name = "paper";
      seed = 1;
      fingerprint = "deadbeef";
      stmts = 81;
      trace_instrs = 39031;
    }
  in
  (match Corpus.of_json (Corpus.manifest_json [ e; { e with seed = 2; spec = "gen:paper:2" } ]) with
  | Ok [ a; b ] ->
      Alcotest.(check string) "spec" "gen:paper:1" a.Corpus.spec;
      Alcotest.(check string) "fingerprint" "deadbeef" a.Corpus.fingerprint;
      Alcotest.(check int) "trace" 39031 a.Corpus.trace_instrs;
      Alcotest.(check int) "seed 2" 2 b.Corpus.seed
  | Ok _ -> Alcotest.fail "wrong entry count"
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg);
  (match Corpus.of_json (parse {|{"schema":"nope/9","entries":[]}|}) with
  | Ok _ -> Alcotest.fail "unknown schema must not load"
  | Error _ -> ());
  match Corpus.of_json (parse {|{"entries":[]}|}) with
  | Ok _ -> Alcotest.fail "missing schema must not load"
  | Error _ -> ()

let () =
  Alcotest.run "bench_compare"
    [
      ( "comparator",
        [
          Alcotest.test_case "metric extraction" `Quick test_metrics;
          Alcotest.test_case "absolute gates" `Quick test_absolute_gates;
          Alcotest.test_case "A/B regression" `Quick test_diff;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "manifest round-trip" `Quick
            test_corpus_roundtrip;
        ] );
    ]
