(* Schema check of the committed BENCH_flow.json: the benchmark file is
   the perf trajectory later changes compare against, so its shape is
   part of the repo's contract. Parses the committed file with Lp_json
   and asserts the keys and types the speed suite promises — including
   the "sim" co-simulation block and the "system-sim" stage row the
   acceptance criteria reference. The "service", "explore", "corpus"
   and "fleet" blocks are optional (the serve, explore, corpus and
   fleet suites merge them in separately). *)

module Json = Lp_json

let load () =
  (* Under `dune runtest` the cwd is the test directory and the dune dep
     puts the file one level up; when run from the project root, it is
     right there. *)
  let path =
    if Sys.file_exists "../BENCH_flow.json" then "../BENCH_flow.json"
    else "BENCH_flow.json"
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let field_of kind j name to_opt =
  match Option.bind (Json.member name j) to_opt with
  | Some v -> v
  | None -> Alcotest.failf "missing or mistyped %s field %S" kind name

let str j name = field_of "string" j name Json.to_string_opt
let num j name = field_of "number" j name Json.to_float_opt
let int_ j name = field_of "int" j name Json.to_int_opt
let obj j name = field_of "object" j name (fun v -> Json.to_assoc_opt v |> Option.map (fun _ -> v))
let arr j name = field_of "array" j name Json.to_list_opt

let test_schema () =
  let doc =
    match Json.parse (load ()) with
    | Ok v -> v
    | Error e -> Alcotest.failf "BENCH_flow.json does not parse: %s" e
  in
  Alcotest.(check string)
    "schema tag" "lowpart-bench-flow/1" (str doc "schema");
  Alcotest.(check bool) "jobs >= 1" true (int_ doc "jobs" >= 1);
  let apps = arr doc "apps" in
  Alcotest.(check bool) "apps non-empty" true (apps <> []);
  List.iter
    (fun a ->
      match Json.to_string_opt a with
      | Some _ -> ()
      | None -> Alcotest.fail "apps entries must be strings")
    apps;
  (* stages: array of {name, ms_per_run}, including the co-simulation
     row the acceptance criteria track. *)
  let stages = arr doc "stages" in
  let stage_names =
    List.map
      (fun s ->
        let name = str s "name" in
        let ms = num s "ms_per_run" in
        Alcotest.(check bool) (name ^ " ms_per_run >= 0") true (ms >= 0.0);
        name)
      stages
  in
  List.iter
    (fun required ->
      if not (List.mem required stage_names) then
        Alcotest.failf "stages is missing %S" required)
    [ "system-sim"; "full-flow-seq"; "full-flow-par"; "full-flow-warm" ];
  (* sim: co-simulation metrics. The MIPS floor is a perf regression
     gate, not just a shape check: the block-compiled engine holds the
     committed figure above the floor on the long-trace workload, and a
     re-benchmarked BENCH_flow.json that falls under it fails tier-1
     until either the regression is fixed or the floor is consciously
     renegotiated. The number itself lives in {!Lp_bench.Gates} so this
     test and the A/B comparator can never disagree about it. *)
  let mips_floor = Lp_bench.Gates.iss_mips_floor in
  let sim = obj doc "sim" in
  Alcotest.(check bool)
    (Printf.sprintf "iss_mips >= %.0f (got %.1f)" mips_floor
       (num sim "iss_mips"))
    true
    (num sim "iss_mips" >= mips_floor);
  ignore (str sim "iss_workload");
  Alcotest.(check bool)
    "iss_trace_instrs > 1000 (long trace)" true
    (int_ sim "iss_trace_instrs" > 1000);
  Alcotest.(check bool) "iss_superops > 0" true (int_ sim "iss_superops" > 0);
  Alcotest.(check bool)
    "superops amortize (> 4 instrs per dynamic entry)" true
    (int_ sim "iss_trace_instrs" > 4 * int_ sim "iss_superop_entries");
  Alcotest.(check bool)
    "initial_cold_ms > 0" true
    (num sim "initial_cold_ms" > 0.0);
  (* A memo-warm probe can be below the clock's resolution. *)
  Alcotest.(check bool)
    "initial_warm_ms >= 0" true
    (num sim "initial_warm_ms" >= 0.0);
  (* flow: suite-level timings. *)
  let flow = obj doc "flow" in
  List.iter
    (fun k -> ignore (num flow k))
    [
      "sequential_s";
      "parallel_s";
      "memo_warm_s";
      "parallel_speedup_paper";
      "memo_warm_speedup";
    ];
  (* The paper-app parallel figure is only meaningful when some app's
     candidate fan-out reaches the pool threshold; below it the flow
     never dispatches to the pool and the file must say so rather than
     advertise a bogus speedup (or get flagged for an honest ~1.0x).
     The above-threshold measurement lives in the corpus block. *)
  Alcotest.(check bool)
    "max_candidate_pairs counted" true
    (int_ flow "max_candidate_pairs" >= 0);
  (match Option.bind
           (Json.member "below_pool_threshold" flow)
           Json.to_bool_opt
   with
  | None -> Alcotest.fail "flow.below_pool_threshold missing or not a bool"
  | Some true -> ()
  | Some false ->
      Alcotest.(check bool)
        "paper parallel speedup must be real when above pool threshold" true
        (num flow "parallel_speedup_paper" > 1.0));
  (* flow.stages: one cold run's per-pipeline-stage wall seconds, one
     key per Flow stage in pipeline order. *)
  let flow_stages = obj flow "stages" in
  List.iter
    (fun st ->
      let k = Lp_core.Flow.stage_name st in
      Alcotest.(check bool)
        ("flow.stages." ^ k ^ " >= 0")
        true
        (num flow_stages k >= 0.0))
    Lp_core.Flow.all_stages;
  (* cache: memo statistics. *)
  let cache = obj doc "cache" in
  let cold = obj cache "cold" in
  List.iter (fun k -> ignore (int_ cold k)) [ "hits"; "misses"; "entries" ];
  ignore (num cache "warm_hit_rate");
  let f_sweep = obj cache "f_sweep" in
  Alcotest.(check bool)
    "f_sweep points non-empty" true
    (arr f_sweep "points" <> []);
  ignore (num f_sweep "rest_hit_rate");
  (* service is merged in by the serve suite; when present it must be
     an object with its own schema tag. *)
  (match Json.member "service" doc with
  | None -> ()
  | Some service ->
      Alcotest.(check string)
        "service schema tag" "lowpart-bench-service/1" (str service "schema"));
  (* corpus is merged in by the corpus suite; when present it carries
     the generated-workload flow benches, with the host-shape fields the
     comparator's conditional speedup floor keys off. *)
  (match Json.member "corpus" doc with
  | None -> ()
  | Some corpus ->
      Alcotest.(check string)
        "corpus schema tag" "lowpart-bench-corpus/1" (str corpus "schema");
      let jobs = int_ corpus "jobs" in
      Alcotest.(check bool) "corpus jobs >= 1" true (jobs >= 1);
      Alcotest.(check bool) "corpus host_cpus >= 1" true
        (int_ corpus "host_cpus" >= 1);
      Alcotest.(check bool)
        "corpus manifest tracks >= 4 size classes" true
        (int_ corpus "manifest_entries" >= 4);
      let tasks = arr corpus "tasks" in
      Alcotest.(check bool) "corpus tasks non-empty" true (tasks <> []);
      let any_above =
        List.exists
          (fun t ->
            ignore (str t "spec");
            Alcotest.(check bool)
              (str t "spec" ^ " pairs counted")
              true
              (int_ t "pairs" >= 0);
            Option.bind (Json.member "above_pool_threshold" t) Json.to_bool_opt
            = Some true)
          tasks
      in
      Alcotest.(check bool)
        "at least one corpus task is above the pool threshold" true any_above;
      let speedup = num corpus "parallel_speedup" in
      (* The same conditional floor the comparator enforces: a real
         speedup when the flow actually fans out, sanity otherwise. *)
      Alcotest.(check bool)
        (Printf.sprintf
           "corpus parallel_speedup %.3f respects the jobs=%d floor" speedup
           jobs)
        true
        (speedup >= Lp_bench.Gates.corpus_speedup_floor ~jobs));
  (* explore is merged in by the explorer suite; when present it carries
     per-app sweep latencies and strategy-efficiency counters. *)
  (match Json.member "explore" doc with
  | None -> ()
  | Some explore ->
      Alcotest.(check string)
        "explore schema tag" "lowpart-bench-explore/1" (str explore "schema");
      Alcotest.(check bool) "explore points >= 1" true
        (int_ explore "points" >= 1);
      let apps = arr explore "apps" in
      Alcotest.(check bool) "explore apps non-empty" true (apps <> []);
      List.iter
        (fun a ->
          ignore (str a "app");
          Alcotest.(check bool)
            (str a "app" ^ " cold_points_per_s > 0")
            true
            (num a "cold_points_per_s" > 0.0);
          Alcotest.(check bool)
            (str a "app" ^ " warm misses counted")
            true
            (int_ a "warm_new_misses" >= 0);
          let anneal = obj a "anneal" in
          Alcotest.(check bool)
            (str a "app" ^ " anneal evaluated >= 1")
            true
            (int_ anneal "evaluated" >= 1))
        apps;
      let totals = obj explore "totals" in
      List.iter
        (fun k -> ignore (num totals k))
        [ "cold_s"; "warm_s"; "warm_speedup" ];
      (* The joint partition x platform sweep: the explorer bench always
         writes it, and its energy_gain is the comparator's
         explore_platform_gain metric. *)
      let ps = obj explore "platform_sweep" in
      ignore (str ps "app");
      let platforms =
        match Json.member "platforms" ps with
        | Some (Json.List l) -> List.filter_map Json.to_string_opt l
        | _ -> Alcotest.fail "platform_sweep.platforms missing"
      in
      Alcotest.(check (list string))
        "platform sweep covers every preset" Lp_tech.Platform.names platforms;
      Alcotest.(check bool) "platform sweep points >= 1" true
        (int_ ps "points" >= 1);
      List.iter
        (fun k -> ignore (num ps k))
        [ "sweep_s"; "best_energy_j"; "default_energy_j"; "energy_gain" ];
      Alcotest.(check bool)
        (Printf.sprintf "platform sweep energy_gain %.3f respects the floor"
           (num ps "energy_gain"))
        true
        (num ps "energy_gain" >= 1.0);
      Alcotest.(check string)
        "platform sweep default is the default platform"
        Lp_tech.Platform.default.Lp_tech.Platform.name
        (str ps "default_platform"));
  (* fleet is merged in by the fleet suite; when present it carries the
     sharded-daemon probe (the gated throughput figure), the overhead
     comparison against the single-process daemon, and the host-shape
     fields that arm or disarm the 2x multicore floor — the same
     convention as corpus.single_cpu_host. *)
  match Json.member "fleet" doc with
  | None -> ()
  | Some fleet ->
      Alcotest.(check string)
        "fleet schema tag" "lowpart-bench-fleet/1" (str fleet "schema");
      Alcotest.(check bool) "fleet host_cpus >= 1" true
        (int_ fleet "host_cpus" >= 1);
      let bool_ name =
        match Option.bind (Json.member name fleet) Json.to_bool_opt with
        | Some b -> b
        | None -> Alcotest.failf "fleet.%s missing or not a bool" name
      in
      let single_cpu = bool_ "single_cpu_host" in
      Alcotest.(check bool)
        "two_x_gate_armed is the multicore complement" (not single_cpu)
        (bool_ "two_x_gate_armed");
      let probe = obj fleet "probe" in
      List.iter
        (fun k ->
          Alcotest.(check bool) ("fleet.probe." ^ k ^ " >= 1") true
            (int_ probe k >= 1))
        [ "shards"; "workers_per_shard"; "clients"; "requests" ];
      List.iter
        (fun k ->
          Alcotest.(check bool) ("fleet.probe." ^ k ^ " >= 0") true
            (num probe k >= 0.0))
        [ "elapsed_s"; "p50_ms"; "p95_ms"; "p99_ms" ];
      (* The probe drives only three distinct programs, so its balance
         figure is recorded for the report, not gated — the 2x balance
         law over a real corpus of fingerprints is pinned by the ring
         tests in test_fleet. *)
      Alcotest.(check bool)
        "probe shard balance recorded (>= 1x ideal by construction)" true
        (num probe "balance_max_over_ideal" >= 0.99);
      (* The same conditional floor the comparator enforces. *)
      let floor = Lp_bench.Gates.fleet_reqs_per_s_floor ~single_cpu in
      Alcotest.(check bool)
        (Printf.sprintf
           "fleet reqs_per_s %.1f respects the single_cpu=%b floor %.1f"
           (num fleet "reqs_per_s") single_cpu floor)
        true
        (num fleet "reqs_per_s" >= floor);
      Alcotest.(check bool)
        "direct daemon comparison recorded" true
        (num fleet "direct_reqs_per_s" > 0.0);
      ignore (num fleet "overhead_vs_direct_pct");
      List.iter
        (fun r ->
          Alcotest.(check bool) "fleet.runs shards >= 1" true
            (int_ r "shards" >= 1);
          Alcotest.(check bool) "fleet.runs reqs_per_s > 0" true
            (num r "reqs_per_s" > 0.0))
        (arr fleet "runs")

let () =
  Alcotest.run "bench_schema"
    [
      ( "bench-flow-json",
        [ Alcotest.test_case "committed file matches schema" `Quick test_schema ]
      );
    ]
