(* The block-compiled ISS is the only production engine, so its
   equivalence with the per-instruction reference engine is load-bearing
   for every golden number in the repo. Three layers of defence:

   - bulk cache laws: [Cache.access_run]/[Cache.read_run] must aggregate
     exactly what the per-access event API reports, including the LRU
     clock (checked indirectly: after any interleaving the twin caches
     agree on stats and on the dirty lines flushed);
   - a differential property: random branchy programs executed by the
     block engine and by [run_stepwise], both wired to the production
     [System.memory_hooks] memory system, must agree on every counter,
     every cache statistic, memory word-for-word, outputs, and energy —
     including with an uncached mailbox window and tiny 8-byte-line
     caches that force blocks to span many I-cache lines;
   - memo fingerprint pins: the engine swap must not move the initial-
     report cache keys, or warm flows would silently re-simulate. *)

module Isa = Lp_isa.Isa
module Asm = Lp_isa.Asm
module Iss = Lp_iss.Iss
module Cache = Lp_cache.Cache
module Memory = Lp_mem.Memory
module System = Lp_system.System
module Memo = Lp_core.Memo

(* --- bulk cache laws ------------------------------------------------ *)

(* Small geometries so traces of a few hundred accesses exercise
   replacement and writebacks; 8-byte lines put only two words on a
   line, so word runs cross lines constantly. *)
let cache_cfgs =
  [
    { Cache.size_bytes = 64; line_bytes = 8; assoc = 1; policy = Cache.Write_back };
    { Cache.size_bytes = 64; line_bytes = 8; assoc = 2; policy = Cache.Write_through };
    { Cache.size_bytes = 128; line_bytes = 16; assoc = 2; policy = Cache.Write_back };
    { Cache.size_bytes = 256; line_bytes = 16; assoc = 1; policy = Cache.Write_through };
  ]

type cache_op =
  | One of int * bool  (** single access: addr, write *)
  | Run of int * bool * int  (** same-address run: addr, write, k *)
  | Seq of int * int  (** sequential word reads: addr, n *)

let op_gen =
  QCheck.Gen.(
    let addr = map (fun a -> a * 4) (int_range 0 127) in
    frequency
      [
        (2, map2 (fun a w -> One (a, w)) addr bool);
        (3, map3 (fun a w k -> Run (a, w, k)) addr bool (int_range 1 5));
        (3, map2 (fun a n -> Seq (a, n)) addr (int_range 1 9));
      ])

let op_str = function
  | One (a, w) -> Printf.sprintf "One(%d,%b)" a w
  | Run (a, w, k) -> Printf.sprintf "Run(%d,%b,%d)" a w k
  | Seq (a, n) -> Printf.sprintf "Seq(%d,%d)" a n

let cache_trace =
  QCheck.make
    ~print:(fun (i, ops) ->
      Printf.sprintf "cfg#%d [%s]" i (String.concat ";" (List.map op_str ops)))
    QCheck.Gen.(
      pair
        (int_range 0 (List.length cache_cfgs - 1))
        (list_size (int_range 1 120) op_gen))

(* Replay one bulk op as individual event-API accesses on the twin,
   returning the aggregate the bulk API must report. A missing event
   contributes all of its word traffic (fill + writeback + through) to
   the miss-stall words; that is exactly [run_miss_words]'s contract. *)
let replay_singles c ops =
  let misses = ref 0
  and fills = ref 0
  and wbs = ref 0
  and through = ref 0
  and miss_words = ref 0 in
  List.iter
    (fun (addr, write) ->
      let e = if write then Cache.write c addr else Cache.read c addr in
      fills := !fills + e.Cache.fill_words;
      wbs := !wbs + e.Cache.writeback_words;
      through := !through + e.Cache.through_words;
      if not e.Cache.hit then begin
        incr misses;
        miss_words :=
          !miss_words + e.Cache.fill_words + e.Cache.writeback_words
          + e.Cache.through_words
      end)
    ops;
  (!misses, !fills, !wbs, !through, !miss_words)

let singles_of = function
  | One (a, w) -> [ (a, w) ]
  | Run (a, w, k) -> List.init k (fun _ -> (a, w))
  | Seq (a, n) -> List.init n (fun i -> (a + (4 * i), false))

let run_aggregate (re : Cache.run_event) =
  ( re.Cache.run_misses,
    re.Cache.run_fill_words,
    re.Cache.run_writeback_words,
    re.Cache.run_through_words,
    re.Cache.run_miss_words )

let prop_bulk_equals_singles =
  QCheck.Test.make ~name:"bulk run APIs aggregate the event API exactly"
    ~count:300 cache_trace (fun (ci, ops) ->
      let cfg = List.nth cache_cfgs ci in
      let bulk = Cache.create cfg and twin = Cache.create cfg in
      let ok =
        List.for_all
          (fun op ->
            let agg =
              match op with
              | One (a, w) ->
                  run_aggregate (Cache.access_run bulk a ~write:w 1)
              | Run (a, w, k) ->
                  run_aggregate (Cache.access_run bulk a ~write:w k)
              | Seq (a, n) -> run_aggregate (Cache.read_run bulk a n)
            in
            agg = replay_singles twin (singles_of op))
          ops
      in
      (* Same stats (including identical energy products) and the same
         dirty lines left behind: flushing both must write back the same
         word count, which pins the LRU/replacement state too. *)
      ok
      && Cache.stats bulk = Cache.stats twin
      && Cache.flush bulk = Cache.flush twin)

(* --- block engine vs per-instruction reference ---------------------- *)

(* Random programs with the shapes that stress block compilation:
   straight-line arithmetic runs (one superop each), forward branches
   into later segments, a bounded backward loop, loads/stores off r0,
   Print traps, and Acall exits that invoke the hook mid-trace. *)

let data_words = 16

let straight_gen =
  QCheck.Gen.(
    (* Destinations avoid r7: it is the backward-loop counter, and a
       body write to it could make the generated program diverge. *)
    let reg = int_range 1 6 in
    let any_reg = int_range 0 7 in
    frequency
      [
        (3, map2 (fun d i -> Isa.Li (d, i)) reg (int_range (-1000) 1000));
        ( 4,
          map3
            (fun d a b -> Isa.Add (d, a, b))
            reg any_reg any_reg );
        (2, map3 (fun d a b -> Isa.Sub (d, a, b)) reg any_reg any_reg);
        (2, map3 (fun d a b -> Isa.Mul (d, a, b)) reg any_reg any_reg);
        (2, map3 (fun d a b -> Isa.Xor (d, a, b)) reg any_reg any_reg);
        (2, map3 (fun d a i -> Isa.Addi (d, a, i)) reg any_reg (int_range (-64) 64));
        (2, map3 (fun d a i -> Isa.Slli (d, a, i)) reg any_reg (int_range 0 31));
        (2, map3 (fun d a i -> Isa.Srai (d, a, i)) reg any_reg (int_range 0 31));
        (1, map2 (fun d a -> Isa.Mov (d, a)) reg any_reg);
        (3, map2 (fun d off -> Isa.Ld (d, 0, off)) reg (int_range 0 (data_words - 1)));
        (3, map2 (fun v off -> Isa.St (v, 0, off)) any_reg (int_range 0 (data_words - 1)));
        (1, map (fun r -> Isa.Print r) any_reg);
        (1, map (fun k -> Isa.Acall k) (int_range 0 3));
        (1, return Isa.Nop);
      ])

(* A program is a list of segments; segment [i] may end with a forward
   conditional branch to any later segment's label (or fall through),
   and the whole list is wrapped in a counted backward loop on r7. *)
type seg = { body : Isa.instr list; branch : (bool * int * int) option }
(* branch = (bnez, test reg, target segment offset ahead) *)

let prog_gen =
  QCheck.Gen.(
    let seg n_ahead =
      map2
        (fun body br -> { body; branch = br })
        (list_size (int_range 1 10) straight_gen)
        (if n_ahead <= 0 then return None
         else
           opt
             (map3
                (fun b r t -> (b, r, t))
                bool (int_range 0 7) (int_range 1 n_ahead)))
    in
    let* n = int_range 1 4 in
    let* segs =
      List.init n (fun i -> seg (n - 1 - i)) |> flatten_l
    in
    let* loop_n = int_range 1 3 in
    return (segs, loop_n))

let items_of (segs, loop_n) =
  let n = List.length segs in
  let seg_label i = Printf.sprintf "seg%d" i in
  let body =
    List.concat
      (List.mapi
         (fun i s ->
           (Asm.Label (seg_label i) :: List.map (fun x -> Asm.Instr x) s.body)
           @
           match s.branch with
           | None -> []
           | Some (bnez, r, ahead) ->
               let target = seg_label (min (n - 1) (i + ahead)) in
               [ (if bnez then Asm.Bnez_l (r, target) else Asm.Beqz_l (r, target)) ])
         segs)
  in
  [ Asm.Label "start"; Asm.Instr (Isa.Li (7, loop_n)); Asm.Label "loop" ]
  @ body
  @ [
      Asm.Instr (Isa.Addi (7, 7, -1));
      Asm.Bnez_l (7, "loop");
      Asm.Instr Isa.Halt;
    ]

let items_str items =
  String.concat "; "
    (List.map
       (function
         | Asm.Label l -> l ^ ":"
         | Asm.Instr i -> Format.asprintf "%a" Isa.pp_instr i
         | Asm.Bnez_l (r, l) -> Printf.sprintf "bnez r%d %s" r l
         | Asm.Beqz_l (r, l) -> Printf.sprintf "beqz r%d %s" r l
         | Asm.Jmp_l l -> "jmp " ^ l
         | Asm.Jal_l l -> "jal " ^ l)
       items)

let diff_case =
  QCheck.make
    ~print:(fun (prog, ci, di, mbox) ->
      Printf.sprintf "icfg#%d dcfg#%d mailbox=%b  %s" ci di mbox
        (items_str (items_of prog)))
    QCheck.Gen.(
      let* prog = prog_gen in
      let* ci = int_range 0 (List.length cache_cfgs - 1) in
      let* di = int_range 0 (List.length cache_cfgs - 1) in
      let* mbox = bool in
      return (prog, ci, di, mbox))

(* Deterministic stand-in for an ASIC task: touches memory, output and
   the asic-cycle counter, so a divergence in Acall plumbing (D-buffer
   drained after instead of before the call, say) shows up in the
   comparison. *)
let test_acall m k =
  Iss.write_mem m (k mod data_words) (1000 + k);
  Iss.push_output m (7000 + k);
  Iss.add_asic_cycles m (3 + k)

type snapshot = {
  res : Iss.result;
  mem_img : int list;
  istats : Cache.stats;
  dstats : Cache.stats;
  mtotals : Memory.totals;
}

let exec_with prog ~icfg ~dcfg ~mailbox runner =
  let icache = Cache.create icfg and dcache = Cache.create dcfg in
  let mem = Memory.create () in
  let mailbox_lo, mailbox_hi = if mailbox then (8, 12) else (0, 0) in
  let hooks =
    System.memory_hooks ~icache ~dcache ~mem ~mailbox_lo ~mailbox_hi
      ~acall:test_acall ()
  in
  let m = Iss.create prog hooks in
  runner m;
  {
    res = Iss.result m;
    mem_img = List.init (Iss.mem_size m) (Iss.read_mem m);
    istats = Cache.stats icache;
    dstats = Cache.stats dcache;
    mtotals = Memory.totals mem;
  }

let prop_block_equals_stepwise =
  QCheck.Test.make
    ~name:"block-compiled execution == per-instruction execution" ~count:300
    diff_case (fun (p, ci, di, mailbox) ->
      let prog =
        Asm.assemble ~entry:"start" ~data_words ~symbols:[] (items_of p)
      in
      let icfg = List.nth cache_cfgs ci and dcfg = List.nth cache_cfgs di in
      let a = exec_with prog ~icfg ~dcfg ~mailbox Iss.run in
      let b = exec_with prog ~icfg ~dcfg ~mailbox Iss.run_stepwise in
      (* Every field is integer-derived (energies are products of the
         same counters computed by the same code), so equality is
         exact — no tolerance. *)
      a = b)

(* --- memo fingerprint pins ------------------------------------------ *)

(* The initial-report cache key digests the program and the
   report-relevant config, not the engine; these pins catch any change
   that would quietly invalidate (or worse, falsely revalidate) every
   persisted initial report. Values recorded before the block engine
   landed. *)
let test_fingerprint_pins () =
  let fp p =
    Digest.to_hex (Memo.initial_fingerprint ~config:System.default_config p)
  in
  Alcotest.(check string)
    "digs16 fingerprint unchanged" "fbe1b60f277ba6c6122f420de0197ebe"
    (fp (Lp_apps.Digs.program ~width:16 ()));
  Alcotest.(check string)
    "digs fingerprint unchanged" "536a60f3c961ffe9972f4fed4b3c8414"
    (fp (Lp_apps.Digs.program ()))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "block_iss"
    [
      ( "cache-bulk",
        qcheck [ prop_bulk_equals_singles ] );
      ( "differential",
        qcheck [ prop_block_equals_stepwise ] );
      ( "fingerprints",
        [ Alcotest.test_case "memo pins" `Quick test_fingerprint_pins ] );
    ]
