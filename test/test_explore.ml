(* lib/explore: Pareto frontier laws (qcheck), strategy determinism
   across jobs, the checkpoint journal (kill/resume re-evaluates
   nothing), memo sharing across explorations, frontier agreement with
   direct [Flow.run], and the [pool_threshold] option. *)

module E = Lp_explore.Explore
module Flow = Lp_core.Flow
module Memo = Lp_core.Memo
module Apps = Lp_apps.Apps
module Platform = Lp_tech.Platform
module System = Lp_system.System

(* --- generators --------------------------------------------------- *)

(* Points drawn from a small lattice so domination actually occurs;
   metrics quantised so ties occur too. *)
let point_gen =
  QCheck.Gen.(
    let* fi = int_range 0 7 in
    let* nm = int_range 1 4 in
    let* ci = int_range 1 3 in
    let* vi = int_range 0 2 in
    return
      {
        E.f = float_of_int fi /. 2.0;
        n_max = nm;
        max_cells = 1000 * ci;
        asic_vdd_v = 2.0 +. (0.5 *. float_of_int vi);
        rset = "default";
        config = "default";
        platform = "default";
      })

let metrics_gen =
  QCheck.Gen.(
    let* ei = int_range 0 20 in
    let* c = int_range 0 10 in
    let* ti = int_range (-10) 10 in
    return
      {
        E.energy_j = float_of_int ei /. 10.0;
        cells = c * 500;
        time_change = float_of_int ti /. 10.0;
        energy_saving = 1.0 -. (float_of_int ei /. 20.0);
      })

(* A log never contains two evaluations of one point with different
   metrics — the engine dedupes by point key — so the generator
   produces distinct points. *)
let log_gen =
  QCheck.Gen.(
    let* pairs = list_size (int_range 0 40) (pair point_gen metrics_gen) in
    let seen = Hashtbl.create 16 in
    return
      (List.filter_map
         (fun (p, m) ->
           if Hashtbl.mem seen p then None
           else begin
             Hashtbl.add seen p ();
             Some { E.point = p; metrics = m; from_journal = false }
           end)
         pairs))

let print_log log =
  String.concat ";"
    (List.map
       (fun (o : E.outcome) ->
         Printf.sprintf "(f=%g c=%d | e=%g c=%d t=%g)" o.point.E.f
           o.point.E.max_cells o.metrics.E.energy_j o.metrics.E.cells
           o.metrics.E.time_change)
       log)

let log_arbitrary = QCheck.make ~print:print_log log_gen

let frontier_no_internal_domination =
  QCheck.Test.make ~count:500 ~name:"no frontier point dominates another"
    log_arbitrary (fun log ->
      let f = E.pareto log in
      List.for_all
        (fun (a : E.outcome) ->
          List.for_all
            (fun (b : E.outcome) -> not (E.dominates a.metrics b.metrics))
            f)
        f)

let frontier_excludes_exactly_the_dominated =
  QCheck.Test.make ~count:500
    ~name:"a log point is excluded iff some log point dominates it"
    log_arbitrary (fun log ->
      let f = E.pareto log in
      let in_frontier o = List.exists (fun o' -> o' = o) f in
      List.for_all
        (fun (o : E.outcome) ->
          let dominated =
            List.exists
              (fun (o' : E.outcome) -> E.dominates o'.metrics o.metrics)
              log
          in
          in_frontier o = not dominated)
        log)

let frontier_permutation_invariant =
  QCheck.Test.make ~count:500 ~name:"frontier invariant under permutation"
    log_arbitrary (fun log ->
      let shuffled =
        List.sort
          (fun (a : E.outcome) b ->
            compare (Hashtbl.hash a.point) (Hashtbl.hash b.point))
          log
      in
      E.pareto log = E.pareto (List.rev log)
      && E.pareto log = E.pareto shuffled)

(* --- engine fixtures ---------------------------------------------- *)

let fixture_program () =
  let open Lp_ir.Builder in
  program
    ~arrays:[ array "a" 64 ]
    [
      func "main" ~params:[] ~locals:[ "s" ]
        [
          for_ "i" (int 0) (int 64)
            [ store "a" (var "i") ((var "i" * int 3) + int 7) ];
          for_ "i" (int 0) (int 64) [ "s" := var "s" + load "a" (var "i") ];
          print (var "s");
        ];
    ]

let small_space =
  {
    (E.space_of_options Flow.default_options) with
    E.f_values = [ 1.0; 8.0 ];
    max_cells_values = [ 8_000; 16_000 ];
  }

let outcome_essence (o : E.outcome) = (o.E.point, o.E.metrics)

let check_same_log msg (a : E.result) (b : E.result) =
  Alcotest.(check bool)
    msg true
    (List.map outcome_essence a.E.log = List.map outcome_essence b.E.log
    && List.map outcome_essence a.E.frontier
       = List.map outcome_essence b.E.frontier)

(* Same seed, different jobs: identical log and frontier. *)
let test_anneal_jobs_determinism () =
  let program = fixture_program () in
  let strategy = E.Strategy.anneal ~budget:6 ~chains:2 () in
  let run jobs =
    E.run ~strategy ~seed:42 ~jobs ~space:small_space ~name:"fixture" program
  in
  let r1 = run 1 and r4 = run 4 in
  check_same_log "jobs 1 = jobs 4" r1 r4;
  Alcotest.(check int) "budget consumed" 6 (List.length r1.E.log);
  (* And a different seed explores a different trajectory (the PRNG is
     actually wired through). *)
  let r_other =
    E.run ~strategy ~seed:43 ~jobs:1 ~space:small_space ~name:"fixture"
      program
  in
  Alcotest.(check bool)
    "seed matters" false
    (List.map (fun (o : E.outcome) -> o.E.point) r1.E.log
    = List.map (fun (o : E.outcome) -> o.E.point) r_other.E.log)

(* Grid frontier metrics agree with direct Flow.run at every frontier
   point — the explorer adds bookkeeping, never a different answer. *)
let test_frontier_matches_direct_flow () =
  let entry = Option.get (Apps.find "digs") in
  let program = entry.Apps.build () in
  let r = E.run ~space:small_space ~jobs:1 ~name:"digs" program in
  Alcotest.(check int) "grid size" 4 (List.length r.E.log);
  List.iter
    (fun (o : E.outcome) ->
      let options =
        {
          (E.options_of_point ~base:Flow.default_options small_space o.E.point)
          with
          Flow.jobs = 1;
        }
      in
      let direct = Flow.run ~options ~name:"digs" program in
      let m = E.metrics_of_result direct in
      Alcotest.(check bool)
        (Printf.sprintf "frontier point f=%g cells=%d" o.E.point.E.f
           o.E.point.E.max_cells)
        true
        (m = o.E.metrics))
    r.E.frontier

(* A second exploration over the same space re-evaluates nothing at the
   candidate level: the shared memo answers every inner evaluation. *)
let test_memo_shared_across_explorations () =
  let program = fixture_program () in
  Memo.reset ();
  let r1 = E.run ~space:small_space ~jobs:1 ~name:"fixture" program in
  let s1 = Memo.stats () in
  let r2 = E.run ~space:small_space ~jobs:1 ~name:"fixture" program in
  let s2 = Memo.stats () in
  Alcotest.(check int) "same points" (List.length r1.E.log)
    (List.length r2.E.log);
  Alcotest.(check int) "no new candidate misses" s1.Memo.misses s2.Memo.misses;
  Alcotest.(check bool) "re-exploration hits the memo" true
    (s2.Memo.hits > s1.Memo.hits)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* Kill/resume: a journal written by a partial ("killed") exploration
   feeds a later full one, which re-evaluates only the genuinely new
   points; an identical re-run evaluates zero. *)
let test_journal_resume () =
  let program = fixture_program () in
  let journal_dir = temp_dir "lp-explore-test" in
  Fun.protect
    ~finally:(fun () -> rm_rf journal_dir)
    (fun () ->
      let subset = { small_space with E.f_values = [ 1.0 ] } in
      let partial =
        E.run ~space:subset ~jobs:1 ~journal_dir ~name:"fixture" program
      in
      Alcotest.(check int) "partial evaluates its grid" 2 partial.E.evaluated;
      Alcotest.(check int) "partial finds no checkpoints" 0
        partial.E.journal_hits;
      let resumed =
        E.run ~space:small_space ~jobs:1 ~journal_dir ~name:"fixture" program
      in
      Alcotest.(check int) "resume replays the finished points" 2
        resumed.E.journal_hits;
      Alcotest.(check int) "resume evaluates only the new points" 2
        resumed.E.evaluated;
      let rerun =
        E.run ~space:small_space ~jobs:1 ~journal_dir ~name:"fixture" program
      in
      Alcotest.(check int) "identical re-run evaluates nothing" 0
        rerun.E.evaluated;
      Alcotest.(check int) "identical re-run is all checkpoints" 4
        rerun.E.journal_hits;
      check_same_log "journal changes no result" resumed rerun;
      (* A different program must not see these checkpoints. *)
      let entry = Option.get (Apps.find "digs") in
      let other =
        E.run ~space:subset ~jobs:1 ~journal_dir ~name:"digs"
          (entry.Apps.build ())
      in
      Alcotest.(check int) "other program misses the journal" 0
        other.E.journal_hits)

(* A torn checkpoint (truncated write) is a miss, never an error. *)
let test_journal_corruption_is_a_miss () =
  let program = fixture_program () in
  let journal_dir = temp_dir "lp-explore-corrupt" in
  Fun.protect
    ~finally:(fun () -> rm_rf journal_dir)
    (fun () ->
      let subset = { small_space with E.f_values = [ 1.0 ] } in
      let _ = E.run ~space:subset ~jobs:1 ~journal_dir ~name:"fix" program in
      let rec points dir =
        List.concat_map
          (fun e ->
            let p = Filename.concat dir e in
            if Sys.is_directory p then points p
            else if Filename.check_suffix p ".point" then [ p ]
            else [])
          (Array.to_list (Sys.readdir dir))
      in
      let files = points journal_dir in
      Alcotest.(check int) "one checkpoint per point" 2 (List.length files);
      let oc = open_out_bin (List.hd files) in
      output_string oc "lowpart-explore/1 torn";
      close_out oc;
      let r = E.run ~space:subset ~jobs:1 ~journal_dir ~name:"fix" program in
      Alcotest.(check int) "torn checkpoint re-evaluated" 1 r.E.evaluated;
      Alcotest.(check int) "intact checkpoint replayed" 1 r.E.journal_hits)

(* Cancellation mid-exploration keeps every completed point in the
   journal; a plain grid resume replays exactly those and evaluates
   only the rest. *)
let test_cancellation_keeps_journal () =
  let program = fixture_program () in
  let journal_dir = temp_dir "lp-explore-cancel" in
  Fun.protect
    ~finally:(fun () -> rm_rf journal_dir)
    (fun () ->
      let cancel = Lp_parallel.Cancel.create () in
      (* One grid point per batch; the token fires once the second
         observation lands, so the engine's next between-batch poll
         must abort before a third point is proposed. *)
      let strategy : E.Strategy.t =
        (module struct
          let name = "drip"

          let start space ~seed:_ =
            let remaining = ref (E.grid_points space) in
            let seen = ref 0 in
            {
              E.propose =
                (fun () ->
                  match !remaining with
                  | [] -> []
                  | p :: rest ->
                      remaining := rest;
                      [ p ]);
              observe =
                (fun obs ->
                  seen := !seen + List.length obs;
                  if !seen >= 2 then Lp_parallel.Cancel.fire cancel);
            }
        end)
      in
      (match
         E.run ~strategy ~cancel ~jobs:1 ~journal_dir ~space:small_space
           ~name:"fixture" program
       with
      | _ -> Alcotest.fail "expected the exploration to abort"
      | exception Lp_parallel.Cancel.Cancelled -> ());
      let resumed =
        E.run ~jobs:1 ~journal_dir ~space:small_space ~name:"fixture" program
      in
      Alcotest.(check int) "completed points replayed" 2
        resumed.E.journal_hits;
      Alcotest.(check int) "only the remaining points evaluated" 2
        resumed.E.evaluated;
      Alcotest.(check int) "full grid in the log" 4
        (List.length resumed.E.log))

(* --- the pool_threshold option ------------------------------------ *)

let test_pool_threshold_option () =
  Alcotest.(check int)
    "default unchanged" 32 Flow.default_options.Flow.pool_threshold;
  Alcotest.(check int)
    "default mirrors the constant" Flow.pool_threshold
    Flow.default_options.Flow.pool_threshold;
  (* Forcing the threshold below the fan-out (pool path) and above it
     (sequential path) changes nothing observable. *)
  let program = fixture_program () in
  let run pool_threshold =
    let options =
      { Flow.default_options with Flow.jobs = 2; pool_threshold }
    in
    E.metrics_of_result (Flow.run ~options ~name:"fixture" program)
  in
  Alcotest.(check bool) "threshold is performance-only" true (run 1 = run 1000)

(* --- the platform axis -------------------------------------------- *)

(* Valid sparclite variants: every combination respects the frequency
   ceiling (20 MHz peak sustains 10 MHz down to 2.4 V). The shared
   "variant" name makes the law hinge on the serialized parameters, not
   the name; sparclite itself joins the pool so the law also covers the
   default platform's empty fingerprint block. *)
let platform_variant_gen =
  QCheck.Gen.(
    let variant =
      let* vdd = oneofl [ 2.4; 3.3 ] in
      let* clock = oneofl [ 5.0; 10.0 ] in
      let* isz = oneofl [ 512; 2048 ] in
      let* lat = oneofl [ 2; 4 ] in
      return
        {
          Platform.sparclite with
          Platform.name = "variant";
          core_vdd_v = vdd;
          clock_mhz = clock;
          icache =
            {
              Platform.sparclite.Platform.icache with
              Platform.geom_size_bytes = isz;
            };
          mem_first_word_latency = lat;
        }
    in
    oneof [ variant; return Platform.sparclite ])

(* Distinct platforms key distinct memo entries; equal platforms share
   one — fingerprint equality is exactly platform equality (for a fixed
   program), so cross-platform memo hits are impossible. *)
let platform_fingerprint_law =
  let program = fixture_program () in
  let fp p =
    Memo.initial_fingerprint ~config:(System.config_of_platform p) program
  in
  QCheck.Test.make ~count:100
    ~name:"platform equality = fingerprint equality"
    (QCheck.make
       ~print:(fun (a, b) ->
         Format.asprintf "%a / %a" Platform.pp a Platform.pp b)
       QCheck.Gen.(pair platform_variant_gen platform_variant_gen))
    (fun (a, b) -> Platform.equal a b = String.equal (fp a) (fp b))

(* The sparclite platform serializes to nothing: its fingerprints are
   byte-identical to the pre-platform digests, so on-disk caches stay
   valid. The hex pin is the same one test_block_iss carries. *)
let test_platform_fingerprint_pin () =
  let entry = Option.get (Apps.find "digs") in
  let program = entry.Apps.build () in
  let fp config = Digest.to_hex (Memo.initial_fingerprint ~config program) in
  Alcotest.(check string) "sparclite config keeps the legacy digest"
    (fp System.default_config)
    (fp (System.config_of_platform Platform.sparclite));
  Alcotest.(check string) "pinned sparclite digest"
    "536a60f3c961ffe9972f4fed4b3c8414" (fp System.default_config);
  Alcotest.(check bool) "tiny config moves the digest" true
    (not
       (String.equal
          (fp (System.config_of_platform Platform.tiny))
          (fp System.default_config)))

(* Distinct base platforms give distinct journal scopes: a tiny-based
   exploration never replays sparclite checkpoints (replaying them
   would hand back wrong metrics), while its own checkpoints replay. *)
let test_journal_platform_scope () =
  let program = fixture_program () in
  let journal_dir = temp_dir "lp-explore-platform" in
  Fun.protect
    ~finally:(fun () -> rm_rf journal_dir)
    (fun () ->
      let subset = { small_space with E.f_values = [ 1.0 ] } in
      let r1 =
        E.run ~space:subset ~jobs:1 ~journal_dir ~name:"fixture" program
      in
      Alcotest.(check int) "sparclite run evaluates its points" 2
        r1.E.evaluated;
      let tiny_base =
        {
          Flow.default_options with
          Flow.config = System.config_of_platform Platform.tiny;
        }
      in
      let tiny_space =
        {
          (E.space_of_options tiny_base) with
          E.f_values = [ 1.0 ];
          max_cells_values = subset.E.max_cells_values;
        }
      in
      let r2 =
        E.run ~space:tiny_space ~jobs:1 ~journal_dir ~base:tiny_base
          ~name:"fixture" program
      in
      Alcotest.(check int) "tiny base misses the sparclite journal" 0
        r2.E.journal_hits;
      Alcotest.(check int) "tiny run evaluates its points" 2 r2.E.evaluated;
      let r3 =
        E.run ~space:tiny_space ~jobs:1 ~journal_dir ~base:tiny_base
          ~name:"fixture" program
      in
      Alcotest.(check int) "tiny journal replays for tiny" 2
        r3.E.journal_hits)

(* The joint partition x platform exploration of the acceptance
   criteria: tiny (2.4 V, 10 MHz, 512 B caches) beats sparclite on
   energy, the frontier says so, and every explored point reproduces
   under a direct Flow.run of options_of_point — the platform axis
   changes real configurations, not just labels. *)
let test_platform_dominance () =
  let entry = Option.get (Apps.find "digs") in
  let program = entry.Apps.build () in
  let space =
    {
      (E.space_of_options Flow.default_options) with
      E.f_values = [ 1.0 ];
      platform_choices =
        E.platform_axis [ Platform.sparclite; Platform.tiny ];
    }
  in
  let r = E.run ~space ~jobs:1 ~name:"digs" program in
  Alcotest.(check int) "one point per platform" 2 (List.length r.E.log);
  let energy_of name =
    List.fold_left
      (fun acc (o : E.outcome) ->
        if String.equal o.E.point.E.platform name then
          Float.min acc o.E.metrics.E.energy_j
        else acc)
      infinity r.E.log
  in
  Alcotest.(check bool) "tiny beats sparclite on energy" true
    (energy_of "tiny" < energy_of "sparclite");
  Alcotest.(check bool) "frontier carries the tiny point" true
    (List.exists
       (fun (o : E.outcome) -> String.equal o.E.point.E.platform "tiny")
       r.E.frontier);
  List.iter
    (fun (o : E.outcome) ->
      let options =
        {
          (E.options_of_point ~base:Flow.default_options space o.E.point) with
          Flow.jobs = 1;
        }
      in
      let direct = Flow.run ~options ~name:"digs" program in
      Alcotest.(check bool)
        (o.E.point.E.platform ^ " point reproduces under direct Flow.run")
        true
        (E.metrics_of_result direct = o.E.metrics))
    r.E.log

(* --- strategy names ----------------------------------------------- *)

let test_strategy_of_string () =
  let name s =
    match E.Strategy.of_string s with
    | Ok t -> E.Strategy.name t
    | Error e -> "error: " ^ e
  in
  Alcotest.(check string) "grid" "grid" (name "grid");
  Alcotest.(check string) "anneal defaults" "anneal:24:4" (name "anneal");
  Alcotest.(check string) "anneal budget" "anneal:7:4" (name "anneal:7");
  Alcotest.(check string) "anneal full" "anneal:7:2" (name "anneal:7:2");
  List.iter
    (fun s ->
      match E.Strategy.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ "grad"; "anneal:0"; "anneal:x"; "anneal:5:0"; "anneal:5:2:9" ]

let () =
  Alcotest.run "explore"
    [
      ( "frontier",
        List.map QCheck_alcotest.to_alcotest
          [
            frontier_no_internal_domination;
            frontier_excludes_exactly_the_dominated;
            frontier_permutation_invariant;
          ] );
      ( "engine",
        [
          Alcotest.test_case "anneal deterministic across jobs" `Quick
            test_anneal_jobs_determinism;
          Alcotest.test_case "frontier matches direct Flow.run" `Quick
            test_frontier_matches_direct_flow;
          Alcotest.test_case "memo shared across explorations" `Quick
            test_memo_shared_across_explorations;
        ] );
      ( "journal",
        [
          Alcotest.test_case "kill and resume" `Quick test_journal_resume;
          Alcotest.test_case "corruption is a miss" `Quick
            test_journal_corruption_is_a_miss;
          Alcotest.test_case "cancellation keeps completed points" `Quick
            test_cancellation_keeps_journal;
        ] );
      ( "options",
        [
          Alcotest.test_case "pool_threshold" `Quick test_pool_threshold_option;
          Alcotest.test_case "strategy names" `Quick test_strategy_of_string;
        ] );
      ( "platform",
        QCheck_alcotest.to_alcotest platform_fingerprint_law
        :: [
             Alcotest.test_case "sparclite fingerprint pin" `Quick
               test_platform_fingerprint_pin;
             Alcotest.test_case "journal scope per platform" `Quick
               test_journal_platform_scope;
             Alcotest.test_case "tiny dominates on energy" `Quick
               test_platform_dominance;
           ] );
    ]
