(* Fleet mode: consistent-hash ring laws (qcheck), end-to-end router +
   worker-process exercise on a temporary Unix socket — byte-identical
   run payloads through the id-rewriting pipe plumbing, streamed stage
   events against the result's own stage times, merged stats shape
   against the single-process daemon's, the metrics schema lock, and
   crash robustness (worker SIGKILLed mid-request -> shard_lost ->
   respawn) plus router-level backpressure. *)

module J = Lp_json
module Protocol = Lp_service.Protocol
module Fleet = Lp_service.Fleet
module Server = Lp_service.Server
module Client = Lp_service.Client
module Ring = Lp_service.Ring

let fresh_path =
  let ctr = ref 0 in
  fun suffix ->
    incr ctr;
    (* Unix sockets cap sun_path around 107 bytes — stay in the system
       temp dir, not under _build. *)
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lp-fleet-%d-%d%s" (Unix.getpid ()) !ctr suffix)

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* --- ring laws ----------------------------------------------------- *)

(* Corpus-shaped keys: what the router actually hashes (the program
   fingerprint preimage of generated workloads). *)
let corpus_keys =
  List.concat_map
    (fun cls ->
      List.init 500 (fun seed ->
          Printf.sprintf "gen:%s:%d|optimize=%b|unroll=%d" cls seed
            (seed mod 2 = 0)
            (1 + (seed mod 3))))
    [ "paper"; "wide"; "deep"; "large" ]

let test_ring_balance () =
  List.iter
    (fun shards ->
      let ring = Ring.create ~shards () in
      let counts = Array.make shards 0 in
      List.iter
        (fun k ->
          let s = Ring.shard_of ring k in
          counts.(s) <- counts.(s) + 1)
        corpus_keys;
      let ideal = float_of_int (List.length corpus_keys) /. float_of_int shards in
      Array.iteri
        (fun i c ->
          if float_of_int c > 2.0 *. ideal then
            Alcotest.failf
              "%d shards: shard %d owns %d of %d keys (> 2x ideal %.0f)"
              shards i c (List.length corpus_keys) ideal)
        counts)
    [ 2; 3; 4; 8 ]

let test_ring_remap () =
  (* Adding one shard to N must remap roughly 1/(N+1) of the keys (the
     point of consistent hashing); allow 2x slack over the ideal. *)
  List.iter
    (fun n ->
      let before = Ring.create ~shards:n () in
      let after = Ring.create ~shards:(n + 1) () in
      let moved =
        List.length
          (List.filter
             (fun k -> Ring.shard_of before k <> Ring.shard_of after k)
             corpus_keys)
      in
      let ideal =
        float_of_int (List.length corpus_keys) /. float_of_int (n + 1)
      in
      if float_of_int moved > 2.0 *. ideal then
        Alcotest.failf "%d -> %d shards moved %d keys (> 2x ideal %.0f)" n
          (n + 1) moved ideal)
    [ 1; 2; 4 ]

let test_ring_golden () =
  (* Cross-process determinism lock: the ring must hash identically in
     every process (the router routes; workers and future routers must
     agree after restarts). Pinned values — if a hash change is
     intentional, update them knowingly: shard placement of every
     cached workload moves. *)
  let ring4 = Ring.create ~shards:4 () in
  List.iter
    (fun (key, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "shard_of %S" key)
        expect (Ring.shard_of ring4 key))
    [
      ("digs|optimize=false|unroll=1", 2);
      ("3d|optimize=false|unroll=1", 2);
      ("mpg|optimize=true|unroll=2", 1);
      ("gen:paper:1|optimize=false|unroll=1", 0);
      ("gen:large:7|optimize=true|unroll=4", 0);
    ]

let qcheck_tests =
  let open QCheck in
  let key = string_of_size (Gen.int_range 1 40) in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"ring: in range and deterministic" ~count:500
         (pair key (int_range 1 8))
         (fun (k, shards) ->
           let a = Ring.create ~shards () in
           let b = Ring.create ~shards () in
           let s = Ring.shard_of a k in
           s >= 0 && s < shards && s = Ring.shard_of b k));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"ring: adding a shard only moves keys to it"
         ~count:500
         (pair key (int_range 1 8))
         (fun (k, n) ->
           let before = Ring.shard_of (Ring.create ~shards:n ()) k in
           let after = Ring.shard_of (Ring.create ~shards:(n + 1) ()) k in
           after = before || after = n));
  ]

(* --- fleet end-to-end ---------------------------------------------- *)

let with_fleet ?(shards = 2) ?(queue_bound = 64) ?(timeout_s = 60.0)
    ?cache_dir f =
  let socket = fresh_path ".sock" in
  let config =
    {
      Fleet.socket_path = Some socket;
      tcp_port = None;
      shards;
      workers = 1;
      queue_bound;
      timeout_s;
      cache_dir;
      handle_signals = false;
    }
  in
  let t = Fleet.start config in
  let thread = Thread.create Fleet.run t in
  Fun.protect
    ~finally:(fun () ->
      Fleet.stop t;
      Thread.join thread;
      try Sys.remove socket with Sys_error _ -> ())
    (fun () -> f socket)

let with_client socket f =
  let c = Client.connect (Client.Unix_socket socket) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let ok_payload what = function
  | { Protocol.payload = Ok v; _ } -> v
  | { Protocol.payload = Error (code, msg); _ } ->
      Alcotest.failf "%s: unexpected error %s: %s" what code msg

(* Workers come up asynchronously under their supervisors: wait until
   the router reports every shard alive before tests that depend on
   dispatch succeeding immediately. *)
let wait_alive socket =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let all_alive () =
    with_client socket (fun c ->
        match (Client.rpc c Protocol.Metrics).Protocol.payload with
        | Ok v -> (
            match J.member "fleet" v with
            | Some f -> (
                match J.member "router" f with
                | Some (J.List rows) ->
                    rows <> []
                    && List.for_all
                         (fun r -> J.bool_field r "alive" = Some true)
                         rows
                | _ -> false)
            | None -> false)
        | Error _ -> false)
  in
  let rec go () =
    if all_alive () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "fleet did not come up within 10 s"
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let app = (List.hd Lp_apps.Apps.all).Lp_apps.Apps.name

let expected_run_payload =
  lazy
    (let e = Option.get (Lp_apps.Apps.find app) in
     let options = Protocol.no_options in
     let program = Protocol.prepare_program options (e.Lp_apps.Apps.build ()) in
     let r =
       Lp_core.Flow.run
         ~options:(Result.get_ok (Protocol.flow_options options))
         ~name:app
         program
     in
     let s = Lp_report.Export.result_json r in
     Lp_core.Memo.reset ();
     s)

let run_request = Protocol.Run { app; options = Protocol.no_options; stream = false }

(* The run payload must cross the router->worker pipe, the id rewrite
   and the response path byte-identically to `lowpart run --json`. *)
let test_run_payload () =
  with_fleet (fun socket ->
      wait_alive socket;
      with_client socket (fun c ->
          let v =
            ok_payload "fleet run"
              (Client.rpc c ~id:(J.String "r1") run_request)
          in
          Alcotest.(check string)
            "payload bytes"
            (Lazy.force expected_run_payload)
            (J.to_string v)))

(* Streamed stage events: in order, seq from 0, and the per-stage sums
   (the verify stage runs twice) agree byte-for-byte with the streamed
   payload's own "stages" object. *)
let test_streaming () =
  with_fleet (fun socket ->
      wait_alive socket;
      with_client socket (fun c ->
          let events = ref [] in
          let resp =
            Client.rpc_stream c ~id:(J.Int 7)
              ~on_event:(fun ev -> events := ev :: !events)
              (Protocol.Run
                 { app; options = Protocol.no_options; stream = true })
          in
          let events = List.rev !events in
          if events = [] then Alcotest.fail "no streamed events";
          List.iteri
            (fun i ev ->
              Alcotest.(check (option int))
                "event id echoes the request id" (Some 7)
                (J.int_field ev "id");
              Alcotest.(check (option string))
                "event kind" (Some "stage")
                (J.string_field ev "event");
              Alcotest.(check (option int)) "seq" (Some i) (J.int_field ev "seq"))
            events;
          (* Events must follow the flow's execution order: the nine
             pipeline stages with verify billing once after each of
             the two system simulations (ten events total). *)
          Alcotest.(check (list string))
            "stage execution order"
            [
              "profile"; "cluster"; "preselect"; "simulate_initial";
              "verify"; "candidates"; "select"; "cores";
              "simulate_partitioned"; "verify";
            ]
            (List.map
               (fun ev -> Option.get (J.string_field ev "stage"))
               events);
          (* Per-stage event sums (arrival order) must reproduce the
             payload's stages object exactly: same clock samples, same
             %.6g printing. *)
          let payload = ok_payload "streamed run" resp in
          let stages =
            match J.member "stages" payload with
            | Some (J.Assoc fields) -> fields
            | _ -> Alcotest.fail "streamed run payload carries no stages"
          in
          let sums : (string, float) Hashtbl.t = Hashtbl.create 16 in
          List.iter
            (fun ev ->
              let stage = Option.get (J.string_field ev "stage") in
              let s = Option.get (J.float_field ev "s") in
              let prev = Option.value (Hashtbl.find_opt sums stage) ~default:0.0 in
              Hashtbl.replace sums stage (prev +. s))
            events;
          Alcotest.(check int)
            "every stage streamed" (List.length stages)
            (Hashtbl.length sums);
          List.iter
            (fun (stage, v) ->
              match Hashtbl.find_opt sums stage with
              | None -> Alcotest.failf "stage %s never streamed" stage
              | Some sum ->
                  Alcotest.(check string)
                    (Printf.sprintf "stage %s seconds" stage)
                    (J.to_string v)
                    (J.to_string (J.Float sum)))
            stages;
          (* A non-streamed run on the same connection keeps the
             stage-free payload contract. *)
          let v = ok_payload "plain run" (Client.rpc c run_request) in
          Alcotest.(check bool)
            "plain run carries no stages" true
            (J.member "stages" v = None)))

(* The key skeleton of a payload: object nesting and field order with
   every leaf erased — two payloads with equal shapes carry the same
   keys in the same places. *)
let rec shape = function
  | J.Assoc fields -> J.Assoc (List.map (fun (k, v) -> (k, shape v)) fields)
  | _ -> J.Null

(* Fleet [stats] must keep the single daemon's envelope shape: same
   keys in the same nesting, counters summed across shards. *)
let test_stats_merged () =
  let single_stats =
    let socket = fresh_path ".sock" in
    let t =
      Server.start
        {
          Server.socket_path = Some socket;
          tcp_port = None;
          workers = 1;
          queue_bound = 64;
          timeout_s = 60.0;
          cache_dir = None;
          handle_signals = false;
        }
    in
    let thread = Thread.create Server.run t in
    Fun.protect
      ~finally:(fun () ->
        Server.stop t;
        Thread.join thread;
        Lp_core.Memo.set_persist_dir None;
        Lp_core.Memo.reset ();
        try Sys.remove socket with Sys_error _ -> ())
      (fun () ->
        with_client socket (fun c ->
            ignore (ok_payload "single run" (Client.rpc c run_request));
            ok_payload "single stats" (Client.rpc c Protocol.Stats)))
  in
  with_fleet (fun socket ->
      wait_alive socket;
      with_client socket (fun c ->
          ignore (ok_payload "fleet run" (Client.rpc c run_request));
          ignore (ok_payload "fleet run" (Client.rpc c run_request));
          let v = ok_payload "fleet stats" (Client.rpc c Protocol.Stats) in
          Alcotest.(check string)
            "merged stats has the single daemon's shape"
            (J.to_string (shape single_stats))
            (J.to_string (shape v));
          let field obj name =
            Option.get (J.int_field (Option.get (J.member obj v)) name)
          in
          Alcotest.(check int) "runs counted across shards" 2
            (field "requests" "run");
          (* 2 shards x 1 worker *)
          Alcotest.(check (option int))
            "workers summed" (Some 2) (J.int_field v "workers")))

(* Schema lock for the scrape surface. *)
let test_metrics_schema () =
  with_fleet (fun socket ->
      wait_alive socket;
      with_client socket (fun c ->
          ignore (ok_payload "run" (Client.rpc c run_request));
          let v = ok_payload "metrics" (Client.rpc c Protocol.Metrics) in
          let str name obj =
            match J.string_field obj name with
            | Some s -> s
            | None -> Alcotest.failf "metrics: missing string %s" name
          in
          let obj name o =
            match J.member name o with
            | Some (J.Assoc _ as a) -> a
            | _ -> Alcotest.failf "metrics: missing object %s" name
          in
          let arr name o =
            match J.member name o with
            | Some (J.List l) -> l
            | _ -> Alcotest.failf "metrics: missing array %s" name
          in
          let has name o =
            if J.member name o = None then
              Alcotest.failf "metrics: missing field %s" name
          in
          Alcotest.(check string)
            "schema" "lowpart-metrics/1" (str "schema" v);
          let fleet = obj "fleet" v in
          List.iter (fun n -> has n fleet) [ "shards"; "uptime_s"; "connections" ];
          let router = arr "router" fleet in
          Alcotest.(check int) "router row per shard" 2 (List.length router);
          List.iter
            (fun row ->
              List.iter
                (fun n -> has n row)
                [
                  "shard"; "pid"; "alive"; "in_flight"; "high_water";
                  "queue_bound"; "dispatched"; "shard_lost"; "respawns";
                  "batches"; "batched_lines"; "ewma_ms";
                ])
            router;
          let shards = arr "shards" v in
          Alcotest.(check int) "worker payload per shard" 2 (List.length shards);
          List.iter
            (fun w ->
              Alcotest.(check string)
                "worker schema" "lowpart-metrics/1" (str "schema" w);
              List.iter
                (fun n -> has n w)
                [ "shard"; "pid"; "uptime_s"; "workers"; "stage_seconds" ];
              List.iter
                (fun n -> has n (obj "queue" w))
                [ "depth"; "high_water"; "bound" ];
              List.iter
                (fun n -> has n (obj "latency_ms" w))
                [
                  "buckets_ms"; "counts"; "count"; "sum_ms"; "max_ms";
                  "p50_ms"; "p95_ms"; "p99_ms";
                ];
              List.iter
                (fun n -> has n (obj "memo" w))
                [ "hits"; "misses"; "hit_rate"; "disk_hits"; "disk_entries" ];
              has "ok" (obj "outcomes" w))
            shards;
          let totals = obj "totals" v in
          List.iter
            (fun n -> has n totals)
            [ "outcomes"; "latency_ms"; "stage_seconds"; "memo" ];
          (* One run happened somewhere: merged outcomes count it. *)
          let ok_total =
            Option.value ~default:0
              (J.int_field (obj "outcomes" totals) "ok")
          in
          if ok_total < 1 then
            Alcotest.failf "merged outcomes lost the run (ok=%d)" ok_total))

let shard0_pid socket =
  with_client socket (fun c ->
      let v = ok_payload "metrics" (Client.rpc c Protocol.Metrics) in
      match J.member "fleet" v with
      | Some f -> (
          match J.member "router" f with
          | Some (J.List (row :: _)) -> Option.get (J.int_field row "pid")
          | _ -> Alcotest.fail "no router rows")
      | None -> Alcotest.fail "no fleet block")

let shard0_counter socket name =
  with_client socket (fun c ->
      let v = ok_payload "metrics" (Client.rpc c Protocol.Metrics) in
      match J.member "fleet" v with
      | Some f -> (
          match J.member "router" f with
          | Some (J.List (row :: _)) -> Option.get (J.int_field row name)
          | _ -> Alcotest.fail "no router rows")
      | None -> Alcotest.fail "no fleet block")

(* Kill the worker mid-request: the in-flight request fails with the
   distinct shard_lost code (naming the shard), the shard respawns,
   and the next request succeeds. *)
let test_shard_lost_and_respawn () =
  let cache = fresh_path ".cache" in
  with_fleet ~shards:1 ~cache_dir:cache (fun socket ->
      wait_alive socket;
      let pid = shard0_pid socket in
      with_client socket (fun c ->
          (* A long exploration keeps the worker busy while we shoot it. *)
          Client.send_line c
            (J.to_string
               (Protocol.request_to_json ~id:(J.String "boom")
                  (Protocol.Explore
                     {
                       app;
                       options = Protocol.no_options;
                       explore =
                         {
                           Protocol.no_explore_options with
                           Protocol.strategy = Some "anneal:200000:4";
                         };
                     })));
          Thread.delay 0.4;
          Unix.kill pid Sys.sigkill;
          (match Client.recv_line c with
          | None -> Alcotest.fail "connection died instead of shard_lost"
          | Some line -> (
              let resp =
                Result.get_ok (Protocol.parse_response (J.of_string line))
              in
              match resp.Protocol.payload with
              | Error ("shard_lost", _) ->
                  let err = Option.get resp.Protocol.resp_error in
                  Alcotest.(check (option int))
                    "error names the shard" (Some 0) (J.int_field err "shard")
              | Error (code, msg) ->
                  Alcotest.failf "expected shard_lost, got %s: %s" code msg
              | Ok _ -> Alcotest.fail "explore survived SIGKILL?"));
          (* The supervisor respawns the shard; the service recovers. *)
          wait_alive socket;
          ignore (ok_payload "run after respawn" (Client.rpc c run_request)));
      let respawns = shard0_counter socket "respawns" in
      if respawns < 1 then
        Alcotest.failf "respawns counter stuck at %d" respawns);
  rm_rf cache

(* Router-level backpressure: past the per-shard in-flight bound the
   router (not the worker) answers overloaded, with a retry hint and
   the chosen shard in the error object. *)
let test_overloaded_backpressure () =
  with_fleet ~shards:1 ~queue_bound:1 ~timeout_s:2.0 (fun socket ->
      wait_alive socket;
      with_client socket (fun c1 ->
          Client.send_line c1
            (J.to_string
               (Protocol.request_to_json ~id:(J.Int 1)
                  (Protocol.Explore
                     {
                       app;
                       options = Protocol.no_options;
                       explore =
                         {
                           Protocol.no_explore_options with
                           Protocol.strategy = Some "anneal:200000:4";
                         };
                     })));
          Thread.delay 0.2;
          with_client socket (fun c2 ->
              let resp = Client.rpc c2 run_request in
              match resp.Protocol.payload with
              | Error ("overloaded", _) ->
                  let err = Option.get resp.Protocol.resp_error in
                  if J.int_field err "retry_after_ms" = None then
                    Alcotest.fail "overloaded without retry_after_ms";
                  Alcotest.(check (option int))
                    "overloaded names the shard" (Some 0)
                    (J.int_field err "shard")
              | Error (code, msg) ->
                  Alcotest.failf "expected overloaded, got %s: %s" code msg
              | Ok _ -> Alcotest.fail "second request was admitted past the bound")))

let () =
  (* Fleet workers are re-execs of this test binary. *)
  Fleet.maybe_exec_worker ();
  Alcotest.run "fleet"
    [
      ( "ring",
        [
          Alcotest.test_case "balance within 2x of ideal" `Quick
            test_ring_balance;
          Alcotest.test_case "adding a shard remaps ~1/N" `Quick
            test_ring_remap;
          Alcotest.test_case "golden placements (cross-process)" `Quick
            test_ring_golden;
        ]
        @ qcheck_tests );
      ( "fleet",
        [
          Alcotest.test_case "run payload byte-identical" `Quick
            test_run_payload;
          Alcotest.test_case "streamed stage events" `Quick test_streaming;
          Alcotest.test_case "merged stats shape" `Quick test_stats_merged;
          Alcotest.test_case "metrics schema" `Quick test_metrics_schema;
          Alcotest.test_case "shard_lost and respawn" `Quick
            test_shard_lost_and_respawn;
          Alcotest.test_case "overloaded backpressure" `Quick
            test_overloaded_backpressure;
        ] );
    ]
