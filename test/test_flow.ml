(* End-to-end partitioning flow: Fig. 1 on small programs — selection
   behaviour, objective-function knobs, verification, core merging. *)

module Flow = Lp_core.Flow
module Objective = Lp_core.Objective
module Candidate = Lp_core.Candidate
module System = Lp_system.System
module Cluster = Lp_cluster.Cluster

(* A miniature "digs": synth + convolve + reduce, all call-free, so the
   whole pipeline is movable. *)
let mini_digs =
  let w = 12 in
  let n = w * w in
  let n1 = n - 1 in
  let open Lp_ir.Builder in
  program
    ~arrays:[ array "img" n; array "out" n ]
    [
      func "main" ~params:[] ~locals:[ "s"; "acc" ]
        [
          "s" := int 17;
          for_ "i" (int 0) (int n)
            [
              "s" := ((var "s" * int 1103515245) + int 12345) &&& int 0xFFFFFF;
              store "img" (var "i") (var "s" &&& int 255);
            ];
          for_ "i" (int 1) (int n1)
            [
              store "out" (var "i")
                ((load "img" (var "i" - int 1)
                 + (load "img" (var "i") * int 2)
                 + load "img" (var "i" + int 1))
                >>> int 2);
            ];
          for_ "i" (int 0) (int n)
            [ "acc" := (var "acc" <<< int 1) + load "out" (var "i") &&& int 0xFFFFF ];
          print (var "acc");
        ];
    ]

(* A call-heavy program: nothing can move. *)
let all_software =
  let open Lp_ir.Builder in
  program ~arrays:[]
    [
      func "g" ~params:[ "x" ] ~locals:[] [ return (var "x" * int 3 + int 1) ];
      func "main" ~params:[] ~locals:[ "s" ]
        [
          for_ "i" (int 0) (int 50) [ "s" := var "s" + call "g" [ var "i" ] ];
          print (var "s");
        ];
    ]

let run ?options name p = Flow.run ?options ~name p

let test_mini_digs_partitions () =
  let r = run "mini-digs" mini_digs in
  Alcotest.(check bool) "selects clusters" true (r.Flow.selected <> []);
  Alcotest.(check bool) "saves energy" true (r.Flow.energy_saving > 0.2);
  Alcotest.(check bool) "cells accounted" true (r.Flow.total_cells > 0);
  (* Verified outputs: Flow.run raises otherwise; double-check
     anyway. *)
  Alcotest.(check (list int)) "outputs equal"
    r.Flow.initial.System.outputs r.Flow.partitioned.System.outputs

let test_energy_conservation_of_report () =
  let r = run "mini-digs" mini_digs in
  let t = System.total_energy_j r.Flow.initial in
  Alcotest.(check bool) "initial energy positive" true (t > 0.0);
  let saving =
    (t -. System.total_energy_j r.Flow.partitioned) /. t
  in
  Alcotest.(check (float 1e-9)) "saving consistent" saving r.Flow.energy_saving

let test_all_software_selects_nothing () =
  let r = run "allsw" all_software in
  Alcotest.(check (list int)) "no clusters selected" []
    (List.map
       (fun s -> s.Flow.candidate.Candidate.cluster.Cluster.cid)
       r.Flow.selected);
  Alcotest.(check (float 1e-9)) "no saving" 0.0 r.Flow.energy_saving;
  Alcotest.(check int) "no cells" 0 r.Flow.total_cells

let test_f_zero_rejects_everything () =
  (* With F = 0 the objective sees only hardware cost: nothing is ever
     worth adding. *)
  let options = { Flow.default_options with Flow.f = 0.0 } in
  let r = run ~options "mini-digs-f0" mini_digs in
  Alcotest.(check int) "nothing selected" 0 (List.length r.Flow.selected)

let test_f_monotone_selection () =
  (* Larger F admits at least as many clusters. *)
  let sel f =
    let options = { Flow.default_options with Flow.f } in
    List.length (run ~options "mini-digs-f" mini_digs).Flow.selected
  in
  let s1 = sel 1.0 and s8 = sel 8.0 and s32 = sel 32.0 in
  Alcotest.(check bool) "monotone in F" true (s1 <= s8 && s8 <= s32)

let test_max_cells_cap () =
  let options = { Flow.default_options with Flow.max_cells = 100 } in
  let r = run ~options "mini-digs-tinycap" mini_digs in
  Alcotest.(check int) "cap excludes all candidates" 0
    (List.length r.Flow.candidates)

let test_n_max_limits_candidates () =
  let options = { Flow.default_options with Flow.n_max = 1 } in
  let r = run ~options "mini-digs-nmax" mini_digs in
  Alcotest.(check bool) "at most one preselected" true
    (List.length r.Flow.preselected <= 1)

let test_selected_beat_up () =
  let r = run "mini-digs" mini_digs in
  List.iter
    (fun s ->
      let c = s.Flow.candidate in
      Alcotest.(check bool) "U_R > U_uP" true (Candidate.beats_up c);
      Alcotest.(check bool) "utilisation sane" true
        (c.Candidate.u_asic > 0.0 && c.Candidate.u_asic <= 1.0))
    r.Flow.selected

let test_adjacent_clusters_merge () =
  let r = run "mini-digs" mini_digs in
  match r.Flow.selected with
  | _ :: _ :: _ ->
      (* Several adjacent clusters selected: they must share cores, so
         cores < selected or a core has several members. *)
      let members =
        List.fold_left (fun acc c -> acc + List.length c.Flow.core_cids) 0 r.Flow.cores
      in
      Alcotest.(check int) "every selected cluster in a core"
        (List.length r.Flow.selected) members;
      Alcotest.(check bool) "merging happened" true
        (List.length r.Flow.cores < List.length r.Flow.selected);
      (* Merged total is cheaper than the sum of per-cluster netlists. *)
      let sum_individual =
        List.fold_left
          (fun acc s -> acc + s.Flow.candidate.Candidate.cells)
          0 r.Flow.selected
      in
      Alcotest.(check bool) "sharing saves cells" true
        (r.Flow.total_cells < sum_individual)
  | _ -> Alcotest.fail "expected a multi-cluster selection"

let test_objective_values () =
  let p = Objective.make_params ~f:2.0 ~e0_j:1.0 () in
  let terms =
    {
      Objective.e_asic_j = 0.1;
      e_up_residual_j = 0.3;
      e_rest_j = 0.1;
      e_trans_j = 0.0;
      cells = 8000;
    }
  in
  Alcotest.(check (float 1e-9)) "OF value"
    ((2.0 *. 0.5) +. (8000.0 /. 16000.0))
    (Objective.value p terms);
  Alcotest.(check (float 1e-9)) "initial OF = F" 2.0 (Objective.initial_value p);
  Alcotest.(check (float 1e-9)) "energy total" 0.5 (Objective.energy_total_j terms);
  match Objective.make_params ~e0_j:0.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero E_0 accepted"

let test_voltage_scaling_tradeoff () =
  (* Lower ASIC supply: at least as much energy saved, never faster. *)
  let run v =
    let options = { Flow.default_options with Flow.asic_vdd_v = v } in
    run ~options "mini-digs-vdd" mini_digs
  in
  let nominal = run Lp_tech.Cmos6.vdd_v in
  let low = run 2.0 in
  Alcotest.(check bool) "lower V saves at least as much" true
    (low.Flow.energy_saving >= nominal.Flow.energy_saving -. 1e-9);
  Alcotest.(check bool) "lower V is slower" true
    (System.total_cycles low.Flow.partitioned
    >= System.total_cycles nominal.Flow.partitioned);
  Alcotest.(check (list int)) "outputs unaffected"
    nominal.Flow.partitioned.System.outputs low.Flow.partitioned.System.outputs

let test_peephole_config_equivalent () =
  (* The peephole pass changes cycle counts, never results. *)
  let config = { System.default_config with System.peephole = true } in
  let options = { Flow.default_options with Flow.config = config } in
  let with_peep = run ~options "mini-digs-peep" mini_digs in
  let without = run "mini-digs" mini_digs in
  Alcotest.(check (list int)) "same outputs"
    without.Flow.partitioned.System.outputs
    with_peep.Flow.partitioned.System.outputs;
  Alcotest.(check bool) "no more instructions" true
    (with_peep.Flow.initial.System.instr_count
    <= without.Flow.initial.System.instr_count)

let test_fds_scheduler_option () =
  (* The flow runs end-to-end with the force-directed scheduler; it
     saves energy but (paper E9) no more than the list schedule, and
     still verifies. *)
  let fds =
    let options =
      { Flow.default_options with Flow.scheduler = Candidate.Fds 1.0 }
    in
    run ~options "mini-digs-fds" mini_digs
  in
  let list_sched = run "mini-digs" mini_digs in
  Alcotest.(check (list int)) "fds outputs equal"
    list_sched.Flow.partitioned.System.outputs
    fds.Flow.partitioned.System.outputs;
  Alcotest.(check bool) "fds still saves" true (fds.Flow.energy_saving > 0.0);
  Alcotest.(check bool) "list schedule at least as good" true
    (list_sched.Flow.energy_saving >= fds.Flow.energy_saving -. 0.02)

let test_stage_times () =
  let r = run "mini-digs" mini_digs in
  Alcotest.(check bool)
    "stage_times covers every stage in pipeline order" true
    (List.map fst r.Flow.stage_times = Flow.all_stages);
  List.iter
    (fun (st, dt) ->
      Alcotest.(check bool) (Flow.stage_name st ^ " >= 0") true (dt >= 0.0))
    r.Flow.stage_times;
  Alcotest.(check bool) "pipeline took measurable time" true
    (List.fold_left (fun a (_, dt) -> a +. dt) 0.0 r.Flow.stage_times > 0.0);
  (* the stage ids are distinct, stable identifiers *)
  let names = List.map Flow.stage_name Flow.all_stages in
  Alcotest.(check int) "stage names distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_prefired_cancel () =
  (* A token fired before the flow starts stops it at the very first
     stage boundary, naming the stage that never ran. *)
  let cancel = Lp_parallel.Cancel.create () in
  Lp_parallel.Cancel.fire cancel;
  match Flow.run ~cancel ~name:"mini-digs-cancel" mini_digs with
  | _ -> Alcotest.fail "expected Flow.Cancelled"
  | exception Flow.Cancelled stage ->
      Alcotest.(check string) "stopped before the first stage" "profile" stage

let test_verification_guard () =
  (* verify_outputs = false must not change results for a healthy
     program. *)
  let options = { Flow.default_options with Flow.verify_outputs = false } in
  let r = run ~options "mini-digs-noverify" mini_digs in
  Alcotest.(check (list int)) "still equivalent"
    r.Flow.initial.System.outputs r.Flow.partitioned.System.outputs

let () =
  Alcotest.run "lp_flow"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "mini-digs partitions" `Quick test_mini_digs_partitions;
          Alcotest.test_case "report consistency" `Quick test_energy_conservation_of_report;
          Alcotest.test_case "call-heavy stays software" `Quick
            test_all_software_selects_nothing;
          Alcotest.test_case "selected beat the uP" `Quick test_selected_beat_up;
          Alcotest.test_case "adjacent merging" `Quick test_adjacent_clusters_merge;
          Alcotest.test_case "verification off" `Quick test_verification_guard;
          Alcotest.test_case "voltage scaling" `Quick test_voltage_scaling_tradeoff;
          Alcotest.test_case "peephole config" `Quick test_peephole_config_equivalent;
          Alcotest.test_case "FDS scheduler option" `Quick test_fds_scheduler_option;
        ] );
      ( "knobs",
        [
          Alcotest.test_case "F=0 rejects" `Quick test_f_zero_rejects_everything;
          Alcotest.test_case "F monotone" `Quick test_f_monotone_selection;
          Alcotest.test_case "max cells cap" `Quick test_max_cells_cap;
          Alcotest.test_case "n_max bound" `Quick test_n_max_limits_candidates;
        ] );
      ( "stages",
        [
          Alcotest.test_case "stage times" `Quick test_stage_times;
          Alcotest.test_case "pre-fired cancel" `Quick test_prefired_cancel;
        ] );
      ("objective", [ Alcotest.test_case "values" `Quick test_objective_values ]);
    ]
