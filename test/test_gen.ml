(* The generator's two contracts (DESIGN.md §14):

   validity — every [(class, seed)] emits a program the full flow can
   take end to end, including the Verify stage (the flow runs with
   [verify_outputs] on by default and fails loudly when the
   partitioned system diverges from the reference, so a completed
   [Flow.run] IS the property);

   determinism — [(class, seed)] is the whole identity of a workload:
   two independent generator invocations (stand-ins for two processes)
   produce byte-identical fingerprints, the flow's Memo program
   fingerprint agrees, and [-j] does not change partitioning results.

   Two corpus fingerprints are additionally golden-pinned here,
   independently of bench/corpus.json: if the generator's stream ever
   shifts, this test names the contract being broken even when someone
   "helpfully" regenerates the manifest in the same change. *)

module Gen = Lp_gen.Gen
module Flow = Lp_core.Flow
module Memo = Lp_core.Memo

let paper = Option.get (Gen.find_class "paper")

let flow_options spec =
  (* n_max = clusters: pre-selection keeps everything, so Verify covers
     whatever the objective actually selects, not a truncated chain. *)
  { Flow.default_options with Flow.n_max = spec.Gen.clusters }

(* --- validity ----------------------------------------------------- *)

let qcheck_verify =
  QCheck.Test.make ~count:8 ~name:"generated programs survive flow Verify"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let program = Gen.generate paper ~seed in
      Lp_ir.Validate.check program;
      let r =
        Flow.run ~options:(flow_options paper)
          ~name:(Gen.name paper ~seed)
          program
      in
      (* Verify ran: both reports exist and the saving is a ratio. *)
      Float.is_finite r.Flow.energy_saving
      && r.Flow.energy_saving < 1.0
      && Lp_system.System.total_energy_j r.Flow.initial > 0.0)

let every_class_generates () =
  List.iter
    (fun spec ->
      let p = Gen.generate spec ~seed:1 in
      Lp_ir.Validate.check p;
      Alcotest.(check bool)
        (spec.Gen.class_name ^ " has statements")
        true
        (Lp_ir.Ast.stmt_count p > 0))
    Gen.classes

(* --- determinism -------------------------------------------------- *)

let n_classes = List.length Gen.classes

let qcheck_deterministic =
  QCheck.Test.make ~count:16
    ~name:"two generator instances agree on (class, seed)"
    QCheck.(pair (int_bound 1_000_000) (int_bound (n_classes - 1)))
    (fun (seed, class_ix) ->
      let spec = List.nth Gen.classes class_ix in
      (* [stress] generation is ~1 s; pinning it once in the corpus is
         enough — property rounds stick to the flow-sized classes. *)
      let spec = if spec.Gen.class_name = "stress" then paper else spec in
      let a = Gen.generate spec ~seed in
      let b = Gen.generate spec ~seed in
      String.equal (Gen.fingerprint a) (Gen.fingerprint b)
      && String.equal
           (Memo.initial_fingerprint
              ~config:Lp_system.System.default_config a)
           (Memo.initial_fingerprint
              ~config:Lp_system.System.default_config b))

let jobs_levels_agree () =
  let program = Gen.generate paper ~seed:7 in
  let run jobs =
    Memo.reset ();
    Flow.run
      ~options:{ (flow_options paper) with Flow.jobs }
      ~name:"gen:paper:7" program
  in
  let r1 = run 1 in
  let r2 = run 4 in
  Alcotest.(check (float 1e-12))
    "energy saving identical at -j 1 and -j 4" r1.Flow.energy_saving
    r2.Flow.energy_saving;
  Alcotest.(check int)
    "same clusters selected"
    (List.length r1.Flow.selected)
    (List.length r2.Flow.selected);
  Alcotest.(check string)
    "Memo program fingerprint independent of jobs"
    (Memo.initial_fingerprint ~config:Lp_system.System.default_config
       r1.Flow.program)
    (Memo.initial_fingerprint ~config:Lp_system.System.default_config
       r2.Flow.program)

(* --- golden pins -------------------------------------------------- *)

let golden_pins () =
  List.iter
    (fun (cls, seed, expect) ->
      let spec = Option.get (Gen.find_class cls) in
      Alcotest.(check string)
        (Printf.sprintf "gen:%s:%d fingerprint pinned" cls seed)
        expect
        (Gen.fingerprint (Gen.generate spec ~seed)))
    [
      ("paper", 1, "6585774178f80b83009006ac6c2fa92c");
      ("deep", 1, "7cd424d883ddc689d78e21f7b6e00a91");
    ]

(* --- spec names --------------------------------------------------- *)

let parse_names () =
  (match Gen.parse_name "gen:paper:3" with
  | Ok (spec, 3) ->
      Alcotest.(check string) "class" "paper" spec.Gen.class_name
  | Ok _ -> Alcotest.fail "wrong seed"
  | Error e -> Alcotest.failf "gen:paper:3 should parse: %s" e);
  List.iter
    (fun bad ->
      match Gen.parse_name bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error msg ->
          Alcotest.(check bool)
            (bad ^ " error is non-empty")
            true
            (String.length msg > 0))
    [ "gen:bogus:1"; "gen:paper"; "gen:paper:x"; "gen:paper:-2"; "mpg" ];
  Alcotest.(check bool) "is_gen_name gen:..." true (Gen.is_gen_name "gen:zz");
  Alcotest.(check bool) "is_gen_name paper app" false (Gen.is_gen_name "mpg")

let resolve_routes () =
  (match Lp_apps.Apps.resolve "gen:paper:1" with
  | Ok e ->
      Alcotest.(check string) "entry name" "gen:paper:1" e.Lp_apps.Apps.name
  | Error msg -> Alcotest.failf "resolve gen:paper:1: %s" msg);
  (match Lp_apps.Apps.resolve "gen:paper:zzz" with
  | Ok _ -> Alcotest.fail "malformed seed must not resolve"
  | Error _ -> ());
  match Lp_apps.Apps.resolve "MPG" with
  | Ok e -> Alcotest.(check string) "paper app" "mpg" e.Lp_apps.Apps.name
  | Error msg -> Alcotest.failf "resolve MPG: %s" msg

let () =
  Alcotest.run "gen"
    [
      ( "validity",
        [
          QCheck_alcotest.to_alcotest qcheck_verify;
          Alcotest.test_case "every class generates valid IR" `Quick
            every_class_generates;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest qcheck_deterministic;
          Alcotest.test_case "-j levels agree" `Quick jobs_levels_agree;
          Alcotest.test_case "golden corpus fingerprints" `Quick golden_pins;
        ] );
      ( "names",
        [
          Alcotest.test_case "parse_name" `Quick parse_names;
          Alcotest.test_case "Apps.resolve routing" `Quick resolve_routes;
        ] );
    ]
