(* ISS micro-architecture accounting: r0 semantics, branch costs,
   memory hooks and stall charging, inter-instruction overhead, the
   Acall callback plumbing, and machine-state access. *)

module Isa = Lp_isa.Isa
module Asm = Lp_isa.Asm
module Iss = Lp_iss.Iss
module E = Lp_iss.Energy_model

let machine ?(hooks = Iss.null_hooks) ?(data_words = 64) items =
  let prog =
    Asm.assemble ~entry:"start" ~data_words ~symbols:[]
      (Asm.Label "start" :: items)
  in
  let m = Iss.create prog hooks in
  Iss.run m;
  (m, Iss.result m)

let test_r0_is_zero () =
  let _, r =
    machine
      [
        Asm.Instr (Isa.Li (0, 123));  (* write to r0 vanishes *)
        Asm.Instr (Isa.Add (1, 0, 0));
        Asm.Instr (Isa.Print 1);
        Asm.Instr Isa.Halt;
      ]
  in
  Alcotest.(check (list int)) "r0 reads 0" [ 0 ] r.Iss.outputs

let test_arithmetic_and_print () =
  let _, r =
    machine
      [
        Asm.Instr (Isa.Li (1, 6));
        Asm.Instr (Isa.Li (2, 7));
        Asm.Instr (Isa.Mul (3, 1, 2));
        Asm.Instr (Isa.Print 3);
        Asm.Instr Isa.Halt;
      ]
  in
  Alcotest.(check (list int)) "6*7" [ 42 ] r.Iss.outputs;
  Alcotest.(check int) "five instructions" 5 r.Iss.instr_count

let test_branch_costs () =
  (* A taken branch pays the refill premium over a not-taken one. *)
  let run_with_flag flag =
    let _, r =
      machine
        [
          Asm.Instr (Isa.Li (1, flag));
          Asm.Bnez_l (1, "skip");
          Asm.Instr Isa.Nop;
          Asm.Label "skip";
          Asm.Instr Isa.Halt;
        ]
    in
    r
  in
  let taken = run_with_flag 1 in
  let not_taken = run_with_flag 0 in
  (* Not-taken executes one more instruction (the nop) yet fewer or
     equal cycles than taken + refill. *)
  Alcotest.(check int) "taken skips the nop" (not_taken.Iss.instr_count - 1)
    taken.Iss.instr_count;
  Alcotest.(check int) "refill premium"
    (not_taken.Iss.up_cycles - E.base_cycles Isa.C_sys + E.taken_branch_cycles)
    taken.Iss.up_cycles

let test_stall_hooks () =
  (* dread returns 3 stall cycles per access: they must show up in
     stall_cycles, not uP cycles. *)
  let hooks = Iss.word_hooks ~dread:(fun _ -> 3) () in
  let _, r =
    machine ~hooks
      [
        Asm.Instr (Isa.Ld (1, 0, 0));
        Asm.Instr (Isa.Ld (2, 0, 1));
        Asm.Instr Isa.Halt;
      ]
  in
  Alcotest.(check int) "two loads stall 6" 6 r.Iss.stall_cycles;
  Alcotest.(check bool) "stall energy charged" true
    (r.Iss.up_energy_j
    > (E.base_energy_j Isa.C_load *. 2.0) +. E.base_energy_j Isa.C_sys)

let test_ifetch_hook_counts () =
  let fetches = ref 0 in
  let hooks = Iss.word_hooks ~ifetch:(fun _ -> incr fetches; 0) () in
  let _, r = machine ~hooks [ Asm.Instr Isa.Nop; Asm.Instr Isa.Halt ] in
  Alcotest.(check int) "one fetch per instruction" r.Iss.instr_count !fetches

let test_inter_instruction_overhead () =
  (* Alternating classes pay the circuit-state overhead; a monotone
     stream does not. *)
  let homogeneous =
    List.init 10 (fun _ -> Asm.Instr (Isa.Add (1, 1, 1))) @ [ Asm.Instr Isa.Halt ]
  in
  let alternating =
    List.concat
      (List.init 5 (fun _ ->
           [ Asm.Instr (Isa.Add (1, 1, 1)); Asm.Instr (Isa.Slli (2, 1, 1)) ]))
    @ [ Asm.Instr Isa.Halt ]
  in
  let _, rh = machine homogeneous in
  let _, ra = machine alternating in
  let base r classes =
    List.fold_left
      (fun acc (cls, n) -> acc +. (float_of_int n *. E.base_energy_j cls))
      0.0 classes
    |> fun b -> r.Iss.up_energy_j -. b
  in
  let overhead_h = base rh rh.Iss.class_counts in
  let overhead_a = base ra ra.Iss.class_counts in
  Alcotest.(check bool) "alternation costs more" true (overhead_a > overhead_h)

let test_acall_callback () =
  let invoked = ref [] in
  let hooks =
    Iss.word_hooks
      ~acall:(fun m k ->
        invoked := k :: !invoked;
        Iss.write_mem m 5 77;
        Iss.push_output m 1000;
        Iss.add_asic_cycles m 42)
      ()
  in
  let _, r =
    machine ~hooks
      [
        Asm.Instr (Isa.Acall 9);
        Asm.Instr (Isa.Ld (1, 0, 5));
        Asm.Instr (Isa.Print 1);
        Asm.Instr Isa.Halt;
      ]
  in
  Alcotest.(check (list int)) "invoked once" [ 9 ] !invoked;
  Alcotest.(check (list int)) "asic output then uP print" [ 1000; 77 ] r.Iss.outputs;
  Alcotest.(check int) "asic cycles" 42 r.Iss.asic_cycles;
  Alcotest.(check int) "total adds asic" r.Iss.asic_cycles
    (Iss.total_cycles r - r.Iss.up_cycles - r.Iss.stall_cycles)

let test_memory_bounds () =
  let m =
    Iss.create
      (Asm.assemble ~entry:"s" ~data_words:8 ~symbols:[]
         [ Asm.Label "s"; Asm.Instr Isa.Halt ])
      Iss.null_hooks
  in
  Iss.run m;
  Alcotest.(check int) "mem size" 8 (Iss.mem_size m);
  (match Iss.read_mem m 8 with
  | exception Iss.Runtime_error _ -> ()
  | _ -> Alcotest.fail "oob read accepted");
  match Iss.load_data m 6 [| 1; 2; 3 |] with
  | exception Iss.Runtime_error _ -> ()
  | _ -> Alcotest.fail "oob load_data accepted"

let test_bad_pc () =
  let prog =
    Asm.assemble ~entry:"s" ~data_words:4 ~symbols:[]
      [ Asm.Label "s"; Asm.Instr (Isa.Jr 5) ]
    (* r5 = 0 -> jumps to instruction 0 forever... actually Jr 5 jumps
       to pc 0 = itself: infinite loop caught by fuel. *)
  in
  let m = Iss.create ~fuel:100 prog Iss.null_hooks in
  match Iss.run m with
  | exception Iss.Runtime_error _ -> ()
  | () -> Alcotest.fail "runaway accepted"

let test_runtime_seconds () =
  let _, r = machine [ Asm.Instr Isa.Halt ] in
  Alcotest.(check (float 1e-12)) "runtime = cycles * period"
    (float_of_int (Iss.total_cycles r) *. Lp_tech.Cmos6.clock_period_s)
    (Iss.runtime_s r)

let () =
  Alcotest.run "lp_iss"
    [
      ( "semantics",
        [
          Alcotest.test_case "r0" `Quick test_r0_is_zero;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic_and_print;
          Alcotest.test_case "memory bounds" `Quick test_memory_bounds;
          Alcotest.test_case "runaway pc" `Quick test_bad_pc;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "branch costs" `Quick test_branch_costs;
          Alcotest.test_case "stall hooks" `Quick test_stall_hooks;
          Alcotest.test_case "ifetch per instruction" `Quick test_ifetch_hook_counts;
          Alcotest.test_case "inter-instruction overhead" `Quick
            test_inter_instruction_overhead;
          Alcotest.test_case "acall plumbing" `Quick test_acall_callback;
          Alcotest.test_case "runtime seconds" `Quick test_runtime_seconds;
        ] );
    ]
