(* Lp_json: parser/printer round-trip properties, error handling, and
   the schema lock on Lp_report.Export — the service protocol depends
   on Export output parsing, and on printing parsed Export output back
   byte-identically. *)

module J = Lp_json

let json_testable =
  Alcotest.testable (fun ppf v -> Format.pp_print_string ppf (J.to_string v)) J.equal

(* --- unit: parsing ------------------------------------------------ *)

let test_literals () =
  Alcotest.(check json_testable) "null" J.Null (J.of_string "null");
  Alcotest.(check json_testable) "true" (J.Bool true) (J.of_string "true");
  Alcotest.(check json_testable) "false" (J.Bool false) (J.of_string " false ");
  Alcotest.(check json_testable) "int" (J.Int 42) (J.of_string "42");
  Alcotest.(check json_testable) "negative" (J.Int (-7)) (J.of_string "-7");
  Alcotest.(check json_testable) "float" (J.Float 1.5) (J.of_string "1.5");
  Alcotest.(check json_testable)
    "exponent" (J.Float 1.5e-7)
    (J.of_string "1.5e-07");
  Alcotest.(check json_testable)
    "int-valued exponent is a float" (J.Float 1e6) (J.of_string "1e+06");
  Alcotest.(check json_testable) "string" (J.String "hi") (J.of_string "\"hi\"");
  Alcotest.(check json_testable)
    "array"
    (J.List [ J.Int 1; J.Int 2 ])
    (J.of_string "[1, 2]");
  Alcotest.(check json_testable) "empty array" (J.List []) (J.of_string "[ ]");
  Alcotest.(check json_testable) "empty object" (J.Assoc []) (J.of_string "{}");
  Alcotest.(check json_testable)
    "object"
    (J.Assoc [ ("a", J.Int 1); ("b", J.List [ J.Null ]) ])
    (J.of_string "{\"a\":1,\"b\":[null]}")

let test_escapes () =
  Alcotest.(check json_testable)
    "simple escapes"
    (J.String "a\"b\\c\nd\te")
    (J.of_string "\"a\\\"b\\\\c\\nd\\te\"");
  Alcotest.(check json_testable)
    "unicode escape (ASCII)" (J.String "A") (J.of_string "\"\\u0041\"");
  Alcotest.(check json_testable)
    "unicode escape (2-byte UTF-8)"
    (J.String "\xc3\xa9")
    (J.of_string "\"\\u00e9\"");
  Alcotest.(check json_testable)
    "surrogate pair"
    (J.String "\xf0\x9d\x84\x9e")
    (J.of_string "\"\\ud834\\udd1e\"");
  (* Control bytes print as \u00XX and parse back. *)
  Alcotest.(check string)
    "control bytes reprint" "\"\\u0001\\n\""
    (J.to_string (J.String "\x01\n"))

let expect_error what s =
  match J.of_string s with
  | v -> Alcotest.failf "%s: expected Parse_error, got %s" what (J.to_string v)
  | exception J.Parse_error _ -> ()

let test_errors () =
  List.iter
    (fun (what, s) -> expect_error what s)
    [
      ("empty", "");
      ("garbage", "wibble");
      ("trailing", "1 2");
      ("bad literal", "nul");
      ("unterminated string", "\"abc");
      ("unterminated array", "[1,");
      ("unterminated object", "{\"a\":1");
      ("missing colon", "{\"a\" 1}");
      ("raw control byte", "\"a\x01b\"");
      ("bare minus", "-");
      ("dot without digits", "1.e");
      ("lone high surrogate", "\"\\ud834x\"");
    ];
  Alcotest.(check bool)
    "parse returns Error" true
    (match J.parse "[" with Error _ -> true | Ok _ -> false)

let test_accessors () =
  let v = J.of_string "{\"a\":1,\"b\":2.5,\"c\":\"x\",\"d\":true,\"e\":[1]}" in
  Alcotest.(check (option int)) "int field" (Some 1) (J.int_field v "a");
  Alcotest.(check (option (float 0.0))) "float field" (Some 2.5) (J.float_field v "b");
  Alcotest.(check (option (float 0.0)))
    "int coerces to float" (Some 1.0) (J.float_field v "a");
  Alcotest.(check (option string)) "string field" (Some "x") (J.string_field v "c");
  Alcotest.(check (option bool)) "bool field" (Some true) (J.bool_field v "d");
  Alcotest.(check (option int)) "absent" None (J.int_field v "zzz");
  Alcotest.(check (option int)) "wrong type" None (J.int_field v "c");
  Alcotest.(check bool)
    "member of non-object" true
    (J.member "a" (J.Int 3) = None);
  Alcotest.(check (option int))
    "integral float as int" (Some 3)
    (J.to_int_opt (J.Float 3.0));
  Alcotest.(check (option int)) "fractional float is not an int" None
    (J.to_int_opt (J.Float 3.5))

let test_equal () =
  Alcotest.(check bool)
    "numbers compare by value" true
    (J.equal (J.Int 2) (J.Float 2.0));
  Alcotest.(check bool)
    "object order-insensitive" true
    (J.equal
       (J.of_string "{\"a\":1,\"b\":2}")
       (J.of_string "{\"b\":2,\"a\":1}"));
  Alcotest.(check bool)
    "array order-sensitive" false
    (J.equal (J.of_string "[1,2]") (J.of_string "[2,1]"))

let test_big_numbers () =
  (* Out of int range falls back to float rather than failing. *)
  (match J.of_string "123456789012345678901234567890" with
  | J.Float _ -> ()
  | v -> Alcotest.failf "expected Float, got %s" (J.to_string v));
  Alcotest.(check json_testable) "1e308" (J.Float 1e308) (J.of_string "1e308");
  Alcotest.(check string)
    "non-finite prints null" "null"
    (J.to_string (J.Float Float.infinity))

(* --- qcheck round trips ------------------------------------------- *)

(* Floats are canonicalised through the printer's own %.6g so the
   generator only produces values the compact format can represent
   exactly; that makes parse . print the identity (up to JSON's
   int/float ambiguity, which [J.equal] absorbs). *)
let canon_float x = float_of_string (Printf.sprintf "%.6g" x)

let gen_json =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun n -> J.Int n) int;
        map
          (fun x -> J.Float (canon_float x))
          (oneof [ float; map (fun x -> x *. 1e-9) float ]);
        map (fun s -> J.String s) (string_size ~gen:char (0 -- 20));
      ]
  in
  let dedup_fields fields =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (k, _) ->
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      fields
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (2, scalar);
               ( 1,
                 map (fun l -> J.List l) (list_size (0 -- 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun l -> J.Assoc (dedup_fields l))
                   (list_size (0 -- 4)
                      (pair (string_size ~gen:printable (0 -- 8)) (self (n / 2))))
               );
             ])

let arbitrary_json =
  QCheck.make ~print:(fun v -> J.to_string v) gen_json

let prop_round_trip =
  QCheck.Test.make ~count:500 ~name:"parse (print v) = v" arbitrary_json
    (fun v -> J.equal (J.of_string (J.to_string v)) v)

let prop_print_stable =
  (* Byte idempotence: printing a parsed document reproduces it. This
     is the property the service leans on for byte-identical run
     payloads. *)
  QCheck.Test.make ~count:500 ~name:"print (parse (print v)) = print v"
    arbitrary_json (fun v ->
      let s = J.to_string v in
      String.equal (J.to_string (J.of_string s)) s)

(* --- the Export schema lock --------------------------------------- *)

let seq_options =
  { Lp_core.Flow.default_options with Lp_core.Flow.jobs = 1 }

let results =
  lazy
    (List.map
       (fun (e : Lp_apps.Apps.entry) ->
         Lp_core.Flow.run ~options:seq_options ~name:e.Lp_apps.Apps.name
           (e.Lp_apps.Apps.build ()))
       Lp_apps.Apps.all)

let test_export_parses () =
  List.iter
    (fun (r : Lp_core.Flow.result) ->
      let s = Lp_report.Export.result_json r in
      match J.parse s with
      | Error msg -> Alcotest.failf "%s: result_json does not parse: %s" r.Lp_core.Flow.name msg
      | Ok v ->
          Alcotest.(check (option string))
            (r.Lp_core.Flow.name ^ ": app field")
            (Some r.Lp_core.Flow.name) (J.string_field v "app");
          List.iter
            (fun field ->
              if J.member field v = None then
                Alcotest.failf "%s: missing %S" r.Lp_core.Flow.name field)
            [
              "energy_saving";
              "time_change";
              "total_cells";
              "clusters";
              "preselected";
              "candidates";
              "selected";
              "initial";
              "partitioned";
              "cores";
            ];
          List.iter
            (fun design ->
              let d = Option.get (J.member design v) in
              if J.float_field d "total_j" = None then
                Alcotest.failf "%s: %s lacks total_j" r.Lp_core.Flow.name design)
            [ "initial"; "partitioned" ])
    (Lazy.force results)

let test_export_byte_stable () =
  List.iter
    (fun (r : Lp_core.Flow.result) ->
      let s = Lp_report.Export.result_json r in
      Alcotest.(check string)
        (r.Lp_core.Flow.name ^ ": parse/print is the identity on Export output")
        s
        (J.to_string (J.of_string s));
      let report = Lp_report.Export.report_json r.Lp_core.Flow.initial in
      Alcotest.(check string)
        (r.Lp_core.Flow.name ^ ": report_json is byte-stable")
        report
        (J.to_string (J.of_string report)))
    (Lazy.force results)

let test_results_json_parses () =
  let s = Lp_report.Export.results_json (Lazy.force results) in
  match J.of_string s with
  | J.List items ->
      Alcotest.(check int)
        "one element per app"
        (List.length Lp_apps.Apps.all)
        (List.length items)
  | v -> Alcotest.failf "results_json is not an array: %s" (J.to_string v)

let () =
  Alcotest.run "json"
    [
      ( "parse",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "escapes" `Quick test_escapes;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "big numbers" `Quick test_big_numbers;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_round_trip; prop_print_stable ] );
      ( "export",
        [
          Alcotest.test_case "result_json parses" `Quick test_export_parses;
          Alcotest.test_case "byte-stable" `Quick test_export_byte_stable;
          Alcotest.test_case "results_json" `Quick test_results_json_parses;
        ] );
    ]
