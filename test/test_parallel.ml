(* The parallel evaluation engine: pool semantics (ordering, exception
   propagation, degenerate inputs), sequential/parallel equivalence of
   the whole partitioning flow, and the candidate memo cache. *)

module Pool = Lp_parallel.Pool
module Cancel = Lp_parallel.Cancel
module Parmap = Lp_parallel.Parmap
module Flow = Lp_core.Flow
module Memo = Lp_core.Memo
module Candidate = Lp_core.Candidate
module Cluster = Lp_cluster.Cluster
module System = Lp_system.System
module Apps = Lp_apps.Apps

(* --- Pool ------------------------------------------------------- *)

let test_map_ordering () =
  Pool.with_pool ~domains:3 (fun pool ->
      List.iter
        (fun n ->
          let input = Array.init n (fun i -> i) in
          let expected = Array.map (fun i -> (i * i) + 1) input in
          let got = Pool.map pool (fun i -> (i * i) + 1) input in
          Alcotest.(check (array int))
            (Printf.sprintf "ordering, n = %d" n)
            expected got)
        [ 0; 1; 2; 3; 7; 64; 1000 ])

let test_map_list () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check (list string))
        "map_list order"
        [ "0"; "1"; "2"; "3"; "4" ]
        (Pool.map_list pool string_of_int [ 0; 1; 2; 3; 4 ]))

let test_oversubscribed_pool () =
  (* Many more workers than items: every item still mapped exactly
     once, in order. *)
  Pool.with_pool ~domains:8 (fun pool ->
      Alcotest.(check (array int))
        "8 workers, 3 items" [| 10; 11; 12 |]
        (Pool.map pool (fun i -> i + 10) [| 0; 1; 2 |]))

let test_exception_propagation () =
  Pool.with_pool ~domains:3 (fun pool ->
      let boom i = if i = 41 then failwith "boom 41" else i in
      (match Pool.map pool boom (Array.init 100 (fun i -> i)) with
      | _ -> Alcotest.fail "expected the task exception to propagate"
      | exception Failure msg ->
          Alcotest.(check string) "task exception surfaces" "boom 41" msg);
      (* The pool survives a failed map. *)
      Alcotest.(check (array int))
        "pool usable after failure" [| 0; 2; 4 |]
        (Pool.map pool (fun i -> 2 * i) [| 0; 1; 2 |]))

let test_lowest_failure_wins () =
  (* Several failing tasks: deterministically report the lowest index,
     no matter which worker finished first. *)
  Pool.with_pool ~domains:4 (fun pool ->
      for _ = 1 to 20 do
        match
          Pool.map pool
            (fun i -> if i mod 7 = 3 then failwith (string_of_int i) else i)
            (Array.init 64 (fun i -> i))
        with
        | _ -> Alcotest.fail "expected an exception"
        | exception Failure msg ->
            Alcotest.(check string) "first failing chunk wins" "3" msg
      done)

let test_sequential_pool () =
  (* domains = 0 is a plain sequential map — and must not hang. *)
  Pool.with_pool ~domains:0 (fun pool ->
      Alcotest.(check int) "no workers" 0 (Pool.size pool);
      Alcotest.(check (array int))
        "sequential fallback" [| 1; 4; 9 |]
        (Pool.map pool (fun i -> i * i) [| 1; 2; 3 |]))

let test_shutdown_rejects_map () =
  let pool = Pool.create ~domains:1 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  match Pool.map pool (fun i -> i) [| 1; 2 |] with
  | _ -> Alcotest.fail "map on a shut-down pool must be rejected"
  | exception Invalid_argument _ -> ()

(* --- cancellation ------------------------------------------------ *)

let test_map_cancelled_mid_run () =
  (* 64 slow elements over 3 workers split into many chunks; the very
     first element fires the token, so most chunks must observe it and
     fail fast instead of running. *)
  Pool.with_pool ~domains:3 (fun pool ->
      let cancel = Cancel.create () in
      let started = Atomic.make 0 in
      let n = 64 in
      let f i =
        Atomic.incr started;
        if i = 0 then Cancel.fire cancel else Unix.sleepf 0.002;
        i
      in
      (match Pool.map ~cancel pool f (Array.init n (fun i -> i)) with
      | _ -> Alcotest.fail "expected Cancel.Cancelled"
      | exception Cancel.Cancelled -> ());
      Alcotest.(check bool)
        "chunks after the fire never started" true
        (Atomic.get started < n);
      (* the pool survives a cancelled map, and a fresh map works *)
      Alcotest.(check (array int))
        "pool reusable after cancellation" [| 0; 1; 4 |]
        (Pool.map pool (fun i -> i * i) [| 0; 1; 2 |]))

let test_prefired_cancel () =
  Pool.with_pool ~domains:2 (fun pool ->
      let cancel = Cancel.create () in
      Cancel.fire cancel;
      Alcotest.(check bool) "fired observable" true (Cancel.fired cancel);
      let ran = Atomic.make false in
      (match
         Pool.map ~cancel pool
           (fun i ->
             Atomic.set ran true;
             i)
           [| 1; 2; 3 |]
       with
      | _ -> Alcotest.fail "map with a fired token must raise"
      | exception Cancel.Cancelled -> ());
      Alcotest.(check bool) "no element ran" false (Atomic.get ran);
      (* a submitted task whose token fired resolves without running *)
      let fut = Pool.submit ~cancel pool (fun () -> Atomic.set ran true) in
      (match Pool.await fut with
      | () -> Alcotest.fail "await must re-raise the cancellation"
      | exception Cancel.Cancelled -> ());
      Alcotest.(check bool) "task body never ran" false (Atomic.get ran))

let test_await_until () =
  Pool.with_pool ~domains:1 (fun pool ->
      let gate = Atomic.make false in
      let fut =
        Pool.submit pool (fun () ->
            while not (Atomic.get gate) do
              Unix.sleepf 0.002
            done;
            99)
      in
      let t0 = Unix.gettimeofday () in
      (match Pool.await_until fut ~deadline:(t0 +. 0.05) with
      | None -> ()
      | Some _ -> Alcotest.fail "must time out while the task is gated");
      let waited = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        "timeout waited at least until the deadline" true (waited >= 0.05);
      Alcotest.(check bool)
        "timeout within the waker's granularity" true (waited < 2.0);
      Atomic.set gate true;
      (match Pool.await_until fut ~deadline:(Unix.gettimeofday () +. 5.0) with
      | Some v -> Alcotest.(check int) "resolved value" 99 v
      | None -> Alcotest.fail "must resolve well before the deadline");
      (* await_until is repeatable on a resolved future *)
      Alcotest.(check (option int))
        "repeat await_until" (Some 99)
        (Pool.await_until fut ~deadline:(Unix.gettimeofday () +. 1.0)))

let test_await_until_reraises () =
  Pool.with_pool ~domains:1 (fun pool ->
      let fut = Pool.submit pool (fun () -> failwith "kaput") in
      match Pool.await_until fut ~deadline:(Unix.gettimeofday () +. 5.0) with
      | _ -> Alcotest.fail "expected the task's exception"
      | exception Failure msg ->
          Alcotest.(check string) "task exception re-raised" "kaput" msg)

let test_parmap () =
  Alcotest.(check (list int))
    "parmap list" [ 2; 4; 6 ]
    (Parmap.list ~domains:2 (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "parmap empty" [] (Parmap.list (fun x -> x) [])

(* --- flow determinism ------------------------------------------- *)

let test_flow_determinism () =
  (* jobs = 1 and jobs = 4 must produce identical partitions on every
     bundled application. *)
  List.iter
    (fun (e : Apps.entry) ->
      let run jobs =
        let options = { Flow.default_options with Flow.jobs } in
        Flow.run ~options ~name:e.name (e.build ())
      in
      let seq = run 1 and par = run 4 in
      let cids (r : Flow.result) =
        List.map
          (fun s -> s.Flow.candidate.Candidate.cluster.Cluster.cid)
          r.Flow.selected
      in
      let check what = Alcotest.check what in
      check (Alcotest.float 0.0) (e.name ^ ": energy saving")
        seq.Flow.energy_saving par.Flow.energy_saving;
      check (Alcotest.float 0.0) (e.name ^ ": time change") seq.Flow.time_change
        par.Flow.time_change;
      check Alcotest.int (e.name ^ ": cells") seq.Flow.total_cells
        par.Flow.total_cells;
      check
        Alcotest.(list int)
        (e.name ^ ": selected clusters") (cids seq) (cids par);
      check Alcotest.int (e.name ^ ": candidates evaluated")
        (List.length seq.Flow.candidates)
        (List.length par.Flow.candidates);
      check
        Alcotest.(list int)
        (e.name ^ ": outputs") seq.Flow.partitioned.System.outputs
        par.Flow.partitioned.System.outputs)
    Apps.all

(* --- memo -------------------------------------------------------- *)

let eval_fixture () =
  (* A small two-kernel program with a movable cluster. *)
  let open Lp_ir.Builder in
  let p =
    program
      ~arrays:[ array "a" 64 ]
      [
        func "main" ~params:[] ~locals:[ "s" ]
          [
            for_ "i" (int 0) (int 64)
              [ store "a" (var "i") ((var "i" * int 3) + int 7) ];
            for_ "i" (int 0) (int 64)
              [ "s" := var "s" + load "a" (var "i") ];
            print (var "s");
          ];
      ]
  in
  let interp = Lp_ir.Interp.run p in
  let chain = Cluster.decompose p in
  let cluster =
    List.find (fun c -> Cluster.asic_candidate c) chain
  in
  (interp.Lp_ir.Interp.profile, cluster)

let test_memo_hit () =
  let profile, cluster = eval_fixture () in
  let rset = Lp_tech.Resource_set.medium_dsp in
  Memo.reset ();
  let first = Memo.evaluate ~profile ~e_trans_j:1e-6 cluster rset in
  let s1 = Memo.stats () in
  Alcotest.(check int) "first call misses" 1 s1.Memo.misses;
  Alcotest.(check int) "no hit yet" 0 s1.Memo.hits;
  let second = Memo.evaluate ~profile ~e_trans_j:1e-6 cluster rset in
  let s2 = Memo.stats () in
  Alcotest.(check int) "second call hits" 1 s2.Memo.hits;
  Alcotest.(check int) "no extra miss" 1 s2.Memo.misses;
  Alcotest.(check int) "one entry" 1 s2.Memo.entries;
  match (first, second) with
  | Some a, Some b ->
      Alcotest.(check int) "cells equal" a.Candidate.cells b.Candidate.cells;
      Alcotest.(check int) "asic cycles equal" a.Candidate.asic_cycles
        b.Candidate.asic_cycles;
      Alcotest.(check int) "up cycles equal" a.Candidate.up_cycles
        b.Candidate.up_cycles;
      Alcotest.(check (float 0.0)) "utilisation equal" a.Candidate.u_asic
        b.Candidate.u_asic;
      Alcotest.(check (float 0.0)) "rough energy equal"
        a.Candidate.e_asic_rough_j b.Candidate.e_asic_rough_j;
      Alcotest.(check (float 0.0)) "transfer energy restamped"
        a.Candidate.e_trans_j b.Candidate.e_trans_j
  | _ -> Alcotest.fail "fixture cluster must evaluate to a candidate"

let test_memo_restamps_transfer_energy () =
  (* e_trans_j is not part of the key; a hit carries the caller's
     value. *)
  let profile, cluster = eval_fixture () in
  let rset = Lp_tech.Resource_set.medium_dsp in
  Memo.reset ();
  let _ = Memo.evaluate ~profile ~e_trans_j:1e-6 cluster rset in
  match Memo.evaluate ~profile ~e_trans_j:5e-5 cluster rset with
  | Some c ->
      Alcotest.(check int) "served from cache" 1 (Memo.stats ()).Memo.hits;
      Alcotest.(check (float 0.0)) "restamped" 5e-5 c.Candidate.e_trans_j
  | None -> Alcotest.fail "fixture cluster must evaluate to a candidate"

let test_memo_key_sensitivity () =
  let profile, cluster = eval_fixture () in
  Memo.reset ();
  let _ =
    Memo.evaluate ~profile ~e_trans_j:0.0 cluster Lp_tech.Resource_set.tiny
  in
  let _ =
    Memo.evaluate ~profile ~e_trans_j:0.0 cluster Lp_tech.Resource_set.small
  in
  let _ =
    Memo.evaluate ~scheduler:(Candidate.Fds 1.0) ~profile ~e_trans_j:0.0
      cluster Lp_tech.Resource_set.small
  in
  let doubled = Array.map (fun n -> 2 * n) profile in
  let _ =
    Memo.evaluate ~profile:doubled ~e_trans_j:0.0 cluster
      Lp_tech.Resource_set.small
  in
  let s = Memo.stats () in
  Alcotest.(check int)
    "resource set, scheduler and profile all key the cache" 4 s.Memo.misses;
  Alcotest.(check int) "no spurious hits" 0 s.Memo.hits

let () =
  Alcotest.run "lp_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "deterministic ordering" `Quick test_map_ordering;
          Alcotest.test_case "map over lists" `Quick test_map_list;
          Alcotest.test_case "oversubscribed" `Quick test_oversubscribed_pool;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "lowest failure wins" `Quick
            test_lowest_failure_wins;
          Alcotest.test_case "sequential (0 workers)" `Quick
            test_sequential_pool;
          Alcotest.test_case "shutdown" `Quick test_shutdown_rejects_map;
          Alcotest.test_case "parmap" `Quick test_parmap;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "map cancelled mid-run" `Quick
            test_map_cancelled_mid_run;
          Alcotest.test_case "pre-fired token" `Quick test_prefired_cancel;
          Alcotest.test_case "await_until" `Quick test_await_until;
          Alcotest.test_case "await_until re-raises" `Quick
            test_await_until_reraises;
        ] );
      ( "flow",
        [
          Alcotest.test_case "jobs=1 equals jobs=4 on all apps" `Slow
            test_flow_determinism;
        ] );
      ( "memo",
        [
          Alcotest.test_case "second evaluate hits" `Quick test_memo_hit;
          Alcotest.test_case "transfer energy restamped" `Quick
            test_memo_restamps_transfer_energy;
          Alcotest.test_case "key sensitivity" `Quick test_memo_key_sensitivity;
        ] );
    ]
