(* In-process exercise of the partitioning service: protocol errors,
   byte-identical run payloads, persistent-cache restart, corruption
   tolerance, and failure containment (mid-run disconnect, overload,
   timeout). Runs a real [Lp_service.Server] on a temporary Unix
   socket with signal handling off. *)

module J = Lp_json
module Protocol = Lp_service.Protocol
module Server = Lp_service.Server
module Client = Lp_service.Client

let fresh_path =
  let ctr = ref 0 in
  fun suffix ->
    incr ctr;
    (* Unix sockets cap sun_path around 107 bytes — stay in the system
       temp dir, not under _build. *)
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lp-svc-%d-%d%s" (Unix.getpid ()) !ctr suffix)

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_server ?cache_dir ?(workers = 2) ?(queue_bound = 64)
    ?(timeout_s = 300.0) f =
  let socket = fresh_path ".sock" in
  let config =
    {
      Server.socket_path = Some socket;
      tcp_port = None;
      workers;
      queue_bound;
      timeout_s;
      cache_dir;
      handle_signals = false;
    }
  in
  let t = Server.start config in
  let thread = Thread.create Server.run t in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Thread.join thread;
      (* The server process owns the memo globally; give the next test
         (and the rest of the suite) a clean slate. Disk entries are
         deliberately kept — that is what the restart test relies on. *)
      Lp_core.Memo.set_persist_dir None;
      Lp_core.Memo.reset ();
      try Sys.remove socket with Sys_error _ -> ())
    (fun () -> f socket)

let with_client socket f =
  let c = Client.connect (Client.Unix_socket socket) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let app = (List.hd Lp_apps.Apps.all).Lp_apps.Apps.name

(* What the daemon must answer for a defaults [run] — computed through
   the same Protocol entry points the server uses, then compared as
   bytes on the wire. *)
let expected_run_payload =
  lazy
    (let e = Option.get (Lp_apps.Apps.find app) in
     let options = Protocol.no_options in
     let program =
       Protocol.prepare_program options (e.Lp_apps.Apps.build ())
     in
     let r =
       Lp_core.Flow.run
         ~options:(Result.get_ok (Protocol.flow_options options))
         ~name:app program
     in
     let s = Lp_report.Export.result_json r in
     Lp_core.Memo.reset ();
     s)

let run_request = Protocol.Run { app; options = Protocol.no_options; stream = false }

let payload_string = function
  | { Protocol.payload = Ok v; _ } -> J.to_string v
  | { Protocol.payload = Error (code, msg); _ } ->
      Alcotest.failf "unexpected error %s: %s" code msg

let expect_code what code = function
  | { Protocol.payload = Error (c, _); _ } ->
      Alcotest.(check string) what code c
  | { Protocol.payload = Ok v; _ } ->
      Alcotest.failf "%s: expected %s error, got ok: %s" what code
        (J.to_string v)

let stats_int resp path field =
  match resp.Protocol.payload with
  | Ok v ->
      Option.get (J.int_field (Option.get (J.member path v)) field)
  | Error (code, msg) -> Alcotest.failf "stats failed: %s: %s" code msg

(* --- tests -------------------------------------------------------- *)

let test_protocol_errors () =
  with_server (fun socket ->
      with_client socket (fun c ->
          Client.send_line c "this is not json";
          (match Client.recv_line c with
          | None -> Alcotest.fail "no response to malformed line"
          | Some line -> (
              match Protocol.parse_response (J.of_string line) with
              | Ok r -> expect_code "malformed line" "parse" r
              | Error m -> Alcotest.failf "bad envelope: %s" m));
          expect_code "unknown cmd" "unknown_cmd"
            (let resp = Client.rpc_json c (J.of_string "{\"cmd\":\"frobnicate\"}") in
             Result.get_ok (Protocol.parse_response resp));
          expect_code "missing app" "bad_request"
            (Result.get_ok
               (Protocol.parse_response
                  (Client.rpc_json c (J.of_string "{\"cmd\":\"run\"}"))));
          expect_code "options must be an object" "bad_request"
            (Result.get_ok
               (Protocol.parse_response
                  (Client.rpc_json c
                     (J.of_string
                        (Printf.sprintf
                           "{\"cmd\":\"run\",\"app\":%S,\"options\":5}" app)))));
          expect_code "unknown app" "unknown_app"
            (Client.rpc c
               (Protocol.Run
                  { app = "no-such-app"; options = Protocol.no_options; stream = false }));
          (* id echo *)
          let resp =
            Client.rpc c ~id:(J.Int 7) Protocol.List_apps
          in
          Alcotest.(check bool)
            "id echoed" true
            (J.equal resp.Protocol.resp_id (J.Int 7));
          (* list payload names every bundled app *)
          (match resp.Protocol.payload with
          | Ok (J.List entries) ->
              Alcotest.(check int)
                "list length"
                (List.length Lp_apps.Apps.all)
                (List.length entries)
          | _ -> Alcotest.fail "list payload is not an array");
          (* after all those errors the daemon still answers *)
          let stats = Client.rpc c Protocol.Stats in
          Alcotest.(check bool)
            "errors counted" true
            (stats_int stats "requests" "errors" >= 4)))

let test_gen_specs () =
  (* Generated [gen:<class>:<seed>] specs go through the same protocol
     paths as built-in names: a valid spec runs the flow, a malformed
     one comes back as a clean [unknown_app] with the parse error —
     never a crash or a generic failure. *)
  with_server (fun socket ->
      with_client socket (fun c ->
          (match
             (Client.rpc c
                (Protocol.Run
                   { app = "gen:paper:1"; options = Protocol.no_options; stream = false }))
               .Protocol.payload
           with
          | Ok v ->
              Alcotest.(check (option string))
                "result names the spec" (Some "gen:paper:1")
                (J.string_field v "app")
          | Error (code, msg) ->
              Alcotest.failf "gen:paper:1 should run: %s: %s" code msg);
          List.iter
            (fun bad ->
              expect_code (Printf.sprintf "malformed spec %S" bad)
                "unknown_app"
                (Client.rpc c
                   (Protocol.Run { app = bad; options = Protocol.no_options; stream = false })))
            [ "gen:bogus:1"; "gen:paper:"; "gen:paper:12junk"; "gen:paper:-3" ]));
  Lp_core.Memo.reset ()

let test_run_byte_identical () =
  (* Force first: the lazy resets the memo after computing, which must
     not happen between the daemon's two runs below. *)
  let expected = Lazy.force expected_run_payload in
  with_server (fun socket ->
      with_client socket (fun c ->
          let first = payload_string (Client.rpc c run_request) in
          Alcotest.(check string)
            "wire payload equals local Export.result_json" expected first;
          let again = payload_string (Client.rpc c run_request) in
          Alcotest.(check string) "repeat run identical" first again;
          let stats = Client.rpc c Protocol.Stats in
          Alcotest.(check bool)
            "second run served from the memo" true
            (stats_int stats "memo" "hits" > 0);
          Alcotest.(check int)
            "two runs counted" 2
            (stats_int stats "requests" "run")))

let explore_options =
  {
    Protocol.strategy = Some "grid";
    seed = Some 3;
    f_values = Some [ 1.0; 8.0 ];
    n_max_values = None;
    max_cells_values = Some [ 8_000; 16_000 ];
    vdd_values = None;
    platform_values = None;
  }

let explore_request =
  Protocol.Explore
    { app; options = Protocol.no_options; explore = explore_options }

let test_explore_request () =
  (* The daemon's explore payload must be byte-identical to a local
     exploration built through the same Protocol entry points — one
     element of `lowpart explore --json`. *)
  let expected =
    let e = Option.get (Lp_apps.Apps.find app) in
    let base = Result.get_ok (Protocol.flow_options Protocol.no_options) in
    let space = Result.get_ok (Protocol.explore_space ~base explore_options) in
    let r =
      Lp_explore.Explore.run ~seed:3 ~jobs:1 ~base ~space ~name:app
        (e.Lp_apps.Apps.build ())
    in
    Lp_core.Memo.reset ();
    J.to_string (Lp_explore.Explore.to_json r)
  in
  with_server (fun socket ->
      with_client socket (fun c ->
          let got = payload_string (Client.rpc c explore_request) in
          Alcotest.(check string)
            "wire payload equals local exploration" expected got;
          let stats = Client.rpc c Protocol.Stats in
          Alcotest.(check int)
            "explore counted" 1
            (stats_int stats "requests" "explore")));
  (* The request survives its own encode/decode. *)
  (match
     Protocol.parse_request (Protocol.request_to_json explore_request)
   with
  | Ok req ->
      Alcotest.(check bool) "request round-trips" true (req = explore_request)
  | Error (code, msg) -> Alcotest.failf "round-trip failed: %s %s" code msg);
  (* A typo'd strategy or a bad axis is rejected at the protocol edge. *)
  List.iter
    (fun line ->
      match Protocol.parse_request (J.of_string line) with
      | Error ("bad_request", _) -> ()
      | Error (code, _) -> Alcotest.failf "expected bad_request, got %s" code
      | Ok _ -> Alcotest.failf "%s should not parse" line)
    [
      {|{"cmd":"explore","app":"digs","explore":{"strategy":"grad"}}|};
      {|{"cmd":"explore","app":"digs","explore":{"f_values":[]}}|};
      {|{"cmd":"explore","app":"digs","explore":{"f_values":["x"]}}|};
      {|{"cmd":"explore","app":"digs","explore":42}|};
    ]

let test_concurrent_clients () =
  with_server ~workers:2 (fun socket ->
      let expected = Lazy.force expected_run_payload in
      let results = Array.make 4 "" in
      let worker i =
        with_client socket (fun c ->
            results.(i) <- payload_string (Client.rpc c run_request))
      in
      let threads = Array.init 4 (fun i -> Thread.create worker i) in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i got ->
          Alcotest.(check string)
            (Printf.sprintf "client %d payload" i)
            expected got)
        results)

let test_persistent_cache () =
  let cache = fresh_path ".cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf cache)
    (fun () ->
      let expected = Lazy.force expected_run_payload in
      (* Cold daemon: computes and populates the disk tier. *)
      with_server ~cache_dir:cache (fun socket ->
          with_client socket (fun c ->
              Alcotest.(check string)
                "cold payload" expected
                (payload_string (Client.rpc c run_request));
              let stats = Client.rpc c Protocol.Stats in
              Alcotest.(check bool)
                "entries persisted" true
                (stats_int stats "memo" "disk_entries" > 0)));
      (* Restarted daemon ([with_server] reset the in-memory tier):
         answers from disk, byte-identical. *)
      with_server ~cache_dir:cache (fun socket ->
          with_client socket (fun c ->
              Alcotest.(check string)
                "warm-from-disk payload" expected
                (payload_string (Client.rpc c run_request));
              let stats = Client.rpc c Protocol.Stats in
              Alcotest.(check bool)
                "restart served from the disk tier" true
                (stats_int stats "memo" "disk_hits" > 0)));
      (* Vandalised cache: truncate every entry, add a foreign file.
         The daemon must treat them as misses and recompute. *)
      let dir =
        Filename.concat cache
          (Printf.sprintf "v%d" Lp_core.Memo.format_version)
      in
      Array.iter
        (fun e ->
          let path = Filename.concat dir e in
          let oc = open_out path in
          output_string oc "junk, definitely not a memo entry";
          close_out oc)
        (Sys.readdir dir);
      let oc = open_out (Filename.concat dir "intruder.memo") in
      output_string oc "\x00\x01\x02";
      close_out oc;
      with_server ~cache_dir:cache (fun socket ->
          with_client socket (fun c ->
              Alcotest.(check string)
                "corrupt cache recomputes, same payload" expected
                (payload_string (Client.rpc c run_request));
              let stats = Client.rpc c Protocol.Stats in
              Alcotest.(check int)
                "nothing served from corrupt entries" 0
                (stats_int stats "memo" "disk_hits"))))

let test_disconnect_mid_run () =
  let expected = Lazy.force expected_run_payload in
  with_server (fun socket ->
      (* Fire a run and hang up before the answer. *)
      (let c = Client.connect (Client.Unix_socket socket) in
       Client.send_line c (J.to_string (Protocol.request_to_json run_request));
       Client.close c);
      Thread.delay 0.05;
      (* The daemon must still be serving. *)
      with_client socket (fun c ->
          let resp = Client.rpc c Protocol.Stats in
          Alcotest.(check bool)
            "stats answers after disconnect" true
            (Result.is_ok resp.Protocol.payload);
          Alcotest.(check string)
            "run still works after disconnect" expected
            (payload_string (Client.rpc c run_request))))

let test_overloaded () =
  with_server ~queue_bound:0 (fun socket ->
      with_client socket (fun c ->
          expect_code "bound 0 rejects compute" "overloaded"
            (Client.rpc c run_request);
          (* Cheap requests bypass the queue. *)
          let resp = Client.rpc c Protocol.List_apps in
          Alcotest.(check bool)
            "list unaffected" true
            (Result.is_ok resp.Protocol.payload)))

let test_timeout () =
  with_server ~timeout_s:0.001 (fun socket ->
      with_client socket (fun c ->
          expect_code "deadline exceeded" "timeout" (Client.rpc c run_request)))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* The exception → error-envelope mapping: cancellation and failed
   verification are distinguishable from a generic failure, and a flow
   cancellation names the stage it stopped at. *)
let test_error_codes () =
  let code e = fst (Server.error_of_exn ~cmd:"run" e) in
  Alcotest.(check string) "flow cancellation" "cancelled"
    (code (Lp_core.Flow.Cancelled "candidates"));
  Alcotest.(check string) "token cancellation" "cancelled"
    (code Lp_parallel.Cancel.Cancelled);
  Alcotest.(check string) "verification" "verification_failed"
    (code (Lp_core.Flow.Verification_failed "outputs diverge"));
  Alcotest.(check string) "everything else" "failed" (code (Failure "boom"));
  let _, msg =
    Server.error_of_exn ~cmd:"run" (Lp_core.Flow.Cancelled "candidates")
  in
  Alcotest.(check bool) "active stage echoed" true
    (contains ~sub:"candidates" msg)

(* stats carries the accumulated per-pipeline-stage wall seconds of the
   run requests it served. *)
let test_stats_stages () =
  with_server (fun socket ->
      with_client socket (fun c ->
          let _ = payload_string (Client.rpc c run_request) in
          let stats = Client.rpc c Protocol.Stats in
          match stats.Protocol.payload with
          | Error (code, msg) -> Alcotest.failf "stats failed: %s: %s" code msg
          | Ok v ->
              let stages =
                match J.member "stages" v with
                | Some s -> s
                | None -> Alcotest.fail "stats payload lacks stages"
              in
              let total =
                List.fold_left
                  (fun acc st ->
                    match
                      Option.bind
                        (J.member (Lp_core.Flow.stage_name st) stages)
                        J.to_float_opt
                    with
                    | Some dt ->
                        Alcotest.(check bool)
                          (Lp_core.Flow.stage_name st ^ " >= 0")
                          true (dt >= 0.0);
                        acc +. dt
                    | None ->
                        Alcotest.failf "stats stages misses %S"
                          (Lp_core.Flow.stage_name st))
                  0.0 Lp_core.Flow.all_stages
              in
              Alcotest.(check bool)
                "stage time accumulated over the run" true (total > 0.0)))

(* The deadline token actually frees the single worker: a huge explore
   blows the 2 s deadline and gets the timeout envelope; the follow-up
   run on the same (sole) worker must then complete promptly instead of
   queueing behind the rest of the exploration (which would take far
   longer than the assertion bound to finish uncancelled). *)
let test_timeout_frees_worker () =
  with_server ~workers:1 ~timeout_s:2.0 (fun socket ->
      with_client socket (fun c ->
          (* warm the memo so the follow-up run is cheap *)
          let warm = payload_string (Client.rpc c run_request) in
          let big_explore =
            Protocol.Explore
              {
                app;
                options = Protocol.no_options;
                explore =
                  {
                    Protocol.strategy = Some "anneal:20000:4";
                    seed = Some 1;
                    f_values = Some [ 0.5; 16.0 ];
                    n_max_values = None;
                    max_cells_values = Some [ 8_000; 16_000; 24_000 ];
                    vdd_values = Some [ 2.0; 3.3 ];
                    platform_values = None;
                  };
              }
          in
          expect_code "huge exploration times out" "timeout"
            (Client.rpc c big_explore);
          let t0 = Unix.gettimeofday () in
          let again = payload_string (Client.rpc c run_request) in
          let elapsed = Unix.gettimeofday () -. t0 in
          Alcotest.(check string) "follow-up run answered correctly" warm again;
          Alcotest.(check bool)
            (Printf.sprintf "worker freed (follow-up took %.2f s)" elapsed)
            true (elapsed < 10.0)))

let test_shutdown_request () =
  let socket = fresh_path ".sock" in
  let config =
    {
      Server.default_config with
      Server.socket_path = Some socket;
      cache_dir = None;
      handle_signals = false;
    }
  in
  let t = Server.start config in
  let thread = Thread.create Server.run t in
  with_client socket (fun c ->
      let resp = Client.rpc c Protocol.Shutdown in
      match resp.Protocol.payload with
      | Ok v ->
          Alcotest.(check (option bool))
            "acknowledges stop" (Some true) (J.bool_field v "stopping")
      | Error (code, msg) -> Alcotest.failf "shutdown failed: %s: %s" code msg);
  (* run returns on its own — no [stop] from us. *)
  Thread.join thread;
  Lp_core.Memo.reset ();
  Alcotest.(check bool)
    "socket unlinked at teardown" false (Sys.file_exists socket)

(* --- platform options: precedence, conflicts, wire stability ------- *)

module Platform = Lp_tech.Platform
module System = Lp_system.System

let string_contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl
    && (String.equal (String.sub haystack i nl) needle || go (i + 1))
  in
  go 0

let test_platform_options () =
  (* A named platform supplies the whole base config. *)
  (match
     Protocol.flow_options
       { Protocol.no_options with Protocol.platform = Some "tiny" }
   with
  | Ok opts ->
      let config = opts.Lp_core.Flow.config in
      Alcotest.(check bool) "config carries the tiny platform" true
        (Platform.equal config.System.platform Platform.tiny);
      Alcotest.(check int) "tiny icache geometry applied" 512
        config.System.icache.Lp_cache.Cache.size_bytes
  | Error msg -> Alcotest.failf "plain platform rejected: %s" msg);
  (* Precedence: a raw field beats the named platform's value — the
     rest of the platform still applies. *)
  (match
     Protocol.flow_options
       {
         Protocol.no_options with
         Protocol.platform = Some "tiny";
         icache_bytes = Some 4096;
       }
   with
  | Ok opts ->
      let config = opts.Lp_core.Flow.config in
      Alcotest.(check int) "raw icache override wins" 4096
        config.System.icache.Lp_cache.Cache.size_bytes;
      Alcotest.(check int) "tiny dcache geometry kept" 512
        config.System.dcache.Lp_cache.Cache.size_bytes;
      Alcotest.(check bool) "tiny clock/Vdd kept" true
        (config.System.platform.Platform.core_vdd_v
         = Platform.tiny.Platform.core_vdd_v)
  | Error msg -> Alcotest.failf "raw-over-platform rejected: %s" msg);
  (* A platform spec override and a raw field for the same knob is
     ambiguous — rejected, with both channels named. *)
  (match
     Protocol.flow_options
       {
         Protocol.no_options with
         Protocol.platform = Some "tiny:icache=1024/16/1";
         icache_bytes = Some 4096;
       }
   with
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "conflict message names both channels: %s" msg)
        true
        (string_contains msg "icache" && string_contains msg "icache_bytes")
  | Ok _ -> Alcotest.fail "conflicting overrides accepted");
  (* Unknown platforms error with the registry listing. *)
  match
    Protocol.flow_options
      { Protocol.no_options with Protocol.platform = Some "bogus" }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown platform accepted"

let test_platform_wire () =
  (* Absent platform emits no field: requests without one are
     byte-identical to pre-platform requests. *)
  let json = Protocol.request_to_json run_request in
  Alcotest.(check bool) "no platform key when absent" true
    (match json with
    | J.Assoc fields -> (
        match List.assoc_opt "options" fields with
        | Some (J.Assoc opts) -> not (List.mem_assoc "platform" opts)
        | Some J.Null | None -> true
        | Some _ -> false)
    | _ -> false);
  (* Present platform (and platform_values) round-trip. *)
  let req =
    Protocol.Explore
      {
        app;
        options =
          { Protocol.no_options with Protocol.platform = Some "tiny" };
        explore =
          {
            Protocol.no_explore_options with
            Protocol.platform_values = Some [ "sparclite"; "tiny" ];
          };
      }
  in
  (match Protocol.parse_request (Protocol.request_to_json req) with
  | Ok got ->
      Alcotest.(check bool) "platform fields round-trip" true (got = req)
  | Error (code, msg) -> Alcotest.failf "round-trip failed: %s %s" code msg);
  (* The daemon answers bad_request for an unknown platform and for
     conflicting overrides — readable envelopes, not dead workers. *)
  with_server (fun socket ->
      with_client socket (fun c ->
          expect_code "unknown platform" "bad_request"
            (Client.rpc c
               (Protocol.Run
                  {
                    app;
                    options =
                      {
                        Protocol.no_options with
                        Protocol.platform = Some "bogus";
                      };
                    stream = false;
                  }));
          expect_code "conflicting overrides" "bad_request"
            (Client.rpc c
               (Protocol.Simulate
                  {
                    app;
                    options =
                      {
                        Protocol.no_options with
                        Protocol.platform = Some "tiny:dcache=1024/16/2";
                        dcache_bytes = Some 4096;
                      };
                  }));
          expect_code "bad platform axis" "bad_request"
            (Client.rpc c
               (Protocol.Explore
                  {
                    app;
                    options = Protocol.no_options;
                    explore =
                      {
                        Protocol.no_explore_options with
                        Protocol.platform_values = Some [ "tiny"; "bogus" ];
                      };
                  }));
          (* The worker is still alive and answering. *)
          let resp = Client.rpc c Protocol.List_apps in
          match resp.Protocol.payload with
          | Ok _ -> ()
          | Error (code, msg) ->
              Alcotest.failf "daemon dead after bad_request: %s %s" code msg))

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "error envelopes" `Quick test_protocol_errors;
          Alcotest.test_case "shutdown request" `Quick test_shutdown_request;
          Alcotest.test_case "platform precedence" `Quick
            test_platform_options;
          Alcotest.test_case "platform on the wire" `Quick
            test_platform_wire;
        ] );
      ( "compute",
        [
          Alcotest.test_case "run byte-identical" `Quick
            test_run_byte_identical;
          Alcotest.test_case "generated specs over the wire" `Quick
            test_gen_specs;
          Alcotest.test_case "explore request" `Quick test_explore_request;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
          Alcotest.test_case "overloaded" `Quick test_overloaded;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "error codes" `Quick test_error_codes;
          Alcotest.test_case "stats stages" `Quick test_stats_stages;
          Alcotest.test_case "timeout frees the worker" `Quick
            test_timeout_frees_worker;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "persistent cache" `Quick test_persistent_cache;
          Alcotest.test_case "mid-run disconnect" `Quick
            test_disconnect_mid_run;
        ] );
    ]
