(* lib/trace: the qcheck balance/nesting law for spans (including
   raising spans and concurrent domains), disabled-mode inertness,
   [timed_span] clock agreement, JSON-line escaping, and the flow
   integration the CLI's [--trace] relies on: a traced [Flow.run]'s
   per-stage span totals equal [Flow.result.stage_times] and the
   [~stages:true] JSON export. *)

module T = Lp_trace
module J = Lp_json
module Flow = Lp_core.Flow
module Memo = Lp_core.Memo
module Apps = Lp_apps.Apps

(* --- helpers ------------------------------------------------------ *)

let with_memory_sink f =
  let sink, events = T.memory_sink () in
  T.set_sink (Some sink);
  let v = Fun.protect ~finally:(fun () -> T.set_sink None) f in
  (v, events ())

(* Per-domain stack replay of an event stream. Returns [None] when the
   stream violates balance or LIFO nesting; otherwise [Some totals],
   the per-name sum of (End.ts - Begin.ts) over all matched pairs. *)
let replay events =
  let stacks = Hashtbl.create 8 in
  let totals = Hashtbl.create 16 in
  let ok = ref true in
  List.iter
    (fun (e : T.event) ->
      let stack =
        Option.value ~default:[] (Hashtbl.find_opt stacks e.T.dom)
      in
      match e.T.ph with
      | T.Begin -> Hashtbl.replace stacks e.T.dom (e :: stack)
      | T.End -> (
          match stack with
          | top :: rest when top.T.name = e.T.name ->
              Hashtbl.replace stacks e.T.dom rest;
              if e.T.ts_s < top.T.ts_s then ok := false;
              let prev =
                Option.value ~default:0.0 (Hashtbl.find_opt totals e.T.name)
              in
              Hashtbl.replace totals e.T.name (prev +. (e.T.ts_s -. top.T.ts_s))
          | _ -> ok := false)
      | T.Counter -> ())
    events;
  Hashtbl.iter (fun _ stack -> if stack <> [] then ok := false) stacks;
  if !ok then Some totals else None

let well_formed events = Option.is_some (replay events)

let totals_exn what events =
  match replay events with
  | Some t -> t
  | None -> Alcotest.failf "%s: event stream unbalanced or badly nested" what

let total totals name = Option.value ~default:0.0 (Hashtbl.find_opt totals name)

let count ph events =
  List.length (List.filter (fun (e : T.event) -> e.T.ph = ph) events)

(* --- the span law (qcheck) ---------------------------------------- *)

(* Random call trees: each node opens a span around its children and
   may raise out of it; parents catch immediately, so execution
   continues. The law: whatever the tree shape and wherever the
   exceptions fire, the emitted stream is a well-formed per-domain
   bracket sequence with exactly one Begin and one End per node. *)
type tree = Node of int * bool * tree list

let rec tree_size (Node (_, _, kids)) =
  1 + List.fold_left (fun a k -> a + tree_size k) 0 kids

let rec print_tree (Node (n, raises, kids)) =
  Printf.sprintf "N%d%s[%s]" n
    (if raises then "!" else "")
    (String.concat ";" (List.map print_tree kids))

let tree_gen =
  QCheck.Gen.(
    sized_size (int_range 0 30)
    @@ fix (fun self n ->
           let* name = int_range 0 5 in
           let* raises = bool in
           let* kids =
             if n <= 0 then return []
             else list_size (int_range 0 3) (self (n / 2))
           in
           return (Node (name, raises, kids))))

exception Boom

let rec exec (Node (name, raises, kids)) =
  T.with_span
    (Printf.sprintf "span-%d" name)
    (fun () ->
      List.iter (fun k -> try exec k with Boom -> ()) kids;
      if raises then raise Boom)

let exec_root t = try exec t with Boom -> ()

let span_law =
  QCheck.Test.make ~count:300
    ~name:"spans balanced and LIFO-nested, even across exceptions"
    (QCheck.make ~print:print_tree tree_gen)
    (fun t ->
      let (), events = with_memory_sink (fun () -> exec_root t) in
      let n = tree_size t in
      count T.Begin events = n
      && count T.End events = n
      && well_formed events
      (* single-threaded run: one emitting domain *)
      && List.length
           (List.sort_uniq compare
              (List.map (fun (e : T.event) -> e.T.dom) events))
         <= 1)

let span_law_multi_domain =
  QCheck.Test.make ~count:60
    ~name:"nesting holds per domain under concurrent emission"
    (QCheck.make
       ~print:(fun (a, b) -> print_tree a ^ " || " ^ print_tree b)
       QCheck.Gen.(pair tree_gen tree_gen))
    (fun (a, b) ->
      let (), events =
        with_memory_sink (fun () ->
            let d = Domain.spawn (fun () -> exec_root b) in
            exec_root a;
            Domain.join d)
      in
      well_formed events
      && count T.Begin events = tree_size a + tree_size b
      && count T.End events = tree_size a + tree_size b)

(* --- emission semantics ------------------------------------------- *)

let test_disabled_is_inert () =
  T.set_sink None;
  Alcotest.(check bool) "disabled by default" false (T.enabled ());
  (* with_span still runs the function and re-raises *)
  Alcotest.(check int) "value passed through" 7 (T.with_span "x" (fun () -> 7));
  (match T.with_span "x" (fun () -> raise Exit) with
  | () -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  T.counter "c" 1;
  (* a removed sink records nothing further *)
  let sink, events = T.memory_sink () in
  T.set_sink (Some sink);
  T.with_span "recorded" (fun () -> ());
  T.set_sink None;
  T.with_span "dropped" (fun () -> ());
  T.counter "dropped" 9;
  let evs = events () in
  Alcotest.(check int) "only the enabled span recorded" 2 (List.length evs);
  List.iter
    (fun (e : T.event) ->
      Alcotest.(check string) "recorded span name" "recorded" e.T.name)
    evs

let test_timed_span_matches_events () =
  let (v, dt), events =
    with_memory_sink (fun () ->
        T.timed_span "work" (fun () ->
            (* a few clock ticks of busy work *)
            let s = ref 0 in
            for i = 1 to 100_000 do
              s := !s + i
            done;
            !s))
  in
  Alcotest.(check int) "value returned" 5000050000 v;
  Alcotest.(check bool) "duration non-negative" true (dt >= 0.0);
  match events with
  | [ b; e ] ->
      Alcotest.(check bool) "begin then end" true
        (b.T.ph = T.Begin && e.T.ph = T.End);
      (* the returned duration comes from the very same clock samples *)
      Alcotest.(check (float 0.0)) "duration = End.ts - Begin.ts" dt
        (e.T.ts_s -. b.T.ts_s)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_counter_event () =
  let (), events = with_memory_sink (fun () -> T.counter "pairs" 38) in
  match events with
  | [ e ] ->
      Alcotest.(check bool) "counter phase" true (e.T.ph = T.Counter);
      Alcotest.(check string) "counter name" "pairs" e.T.name;
      Alcotest.(check int) "counter value" 38 e.T.value
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_event_json_escaping () =
  let nasty = "a\"b\\c\nd\te\x01f" in
  let e =
    { T.ph = T.Counter; name = nasty; ts_s = 1722950000.123456; dom = 3;
      value = 42 }
  in
  let j = J.of_string (T.event_json e) in
  Alcotest.(check (option string))
    "name round-trips through JSON" (Some nasty)
    (Option.bind (J.member "name" j) J.to_string_opt);
  Alcotest.(check (option string))
    "counter phase tag" (Some "C")
    (Option.bind (J.member "ph" j) J.to_string_opt);
  Alcotest.(check (option int))
    "dom" (Some 3)
    (Option.bind (J.member "dom" j) J.to_int_opt);
  Alcotest.(check (option int))
    "value" (Some 42)
    (Option.bind (J.member "value" j) J.to_int_opt);
  match Option.bind (J.member "ts" j) J.to_float_opt with
  | Some ts ->
      Alcotest.(check bool) "ts within printed precision" true
        (Float.abs (ts -. e.T.ts_s) < 1e-5)
  | None -> Alcotest.fail "ts missing"

(* --- flow integration --------------------------------------------- *)

let flow_app = List.hd Apps.all
let flow_options = { Flow.default_options with Flow.jobs = 1 }

let traced_flow () =
  Memo.reset ();
  with_memory_sink (fun () ->
      Flow.run ~options:flow_options ~name:flow_app.Apps.name
        (flow_app.Apps.build ()))

(* Every stage span total in the event stream equals the corresponding
   [stage_times] entry — same clock samples, same accumulation order,
   so the agreement is exact. *)
let test_flow_spans_match_stage_times () =
  let r, events = traced_flow () in
  let totals = totals_exn "flow trace" events in
  Alcotest.(check bool)
    "stage_times covers all_stages in order" true
    (List.map fst r.Flow.stage_times = Flow.all_stages);
  List.iter
    (fun (st, dt) ->
      Alcotest.(check (float 1e-9))
        ("flow." ^ Flow.stage_name st)
        dt
        (total totals ("flow." ^ Flow.stage_name st)))
    r.Flow.stage_times;
  Alcotest.(check bool)
    "pipeline took measurable time" true
    (List.fold_left (fun a (_, dt) -> a +. dt) 0.0 r.Flow.stage_times > 0.0);
  (* the candidate fan-out counter is in the stream *)
  Alcotest.(check bool)
    "flow.candidates.pairs counter emitted" true
    (List.exists
       (fun (e : T.event) ->
         e.T.ph = T.Counter && e.T.name = "flow.candidates.pairs"
         && e.T.value > 0)
       events)

(* The acceptance path end-to-end at the library level: a file sink's
   JSON lines parse back into a balanced stream whose per-stage totals
   match the ["stages"] object of the [~stages:true] export (to the
   sink's microsecond timestamp precision). *)
let test_file_sink_matches_json_export () =
  let path = Filename.temp_file "lp-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.set_sink (Some (T.file_sink path));
      let r =
        Fun.protect ~finally:T.close (fun () ->
            Memo.reset ();
            Flow.run ~options:flow_options ~name:flow_app.Apps.name
              (flow_app.Apps.build ()))
      in
      let lines =
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let rec go acc =
              match input_line ic with
              | line -> go (line :: acc)
              | exception End_of_file -> List.rev acc
            in
            go [])
      in
      Alcotest.(check bool) "trace file non-empty" true (lines <> []);
      let events =
        List.map
          (fun line ->
            let j = J.of_string line in
            let field name to_opt =
              match Option.bind (J.member name j) to_opt with
              | Some v -> v
              | None -> Alcotest.failf "bad trace line: %s" line
            in
            let ph =
              match field "ph" J.to_string_opt with
              | "B" -> T.Begin
              | "E" -> T.End
              | "C" -> T.Counter
              | p -> Alcotest.failf "unknown phase %S" p
            in
            {
              T.ph;
              name = field "name" J.to_string_opt;
              ts_s = field "ts" J.to_float_opt;
              dom = field "dom" J.to_int_opt;
              value =
                Option.value ~default:0
                  (Option.bind (J.member "value" j) J.to_int_opt);
            })
          lines
      in
      let totals = totals_exn "trace file" events in
      let stages = J.of_string (Lp_report.Export.stages_json r) in
      (* and the same object rides in result_json ~stages:true — while
         the default export stays stage-free *)
      Alcotest.(check bool)
        "default export has no stages key" true
        (J.member "stages" (J.of_string (Lp_report.Export.result_json r))
        = None);
      (match
         J.member "stages"
           (J.of_string (Lp_report.Export.result_json ~stages:true r))
       with
      | Some s ->
          Alcotest.(check bool)
            "opt-in export embeds the stages object" true (J.equal s stages)
      | None -> Alcotest.fail "result_json ~stages:true lacks stages");
      List.iter
        (fun st ->
          let k = Flow.stage_name st in
          let exported =
            match Option.bind (J.member k stages) J.to_float_opt with
            | Some v -> v
            | None -> Alcotest.failf "stages export misses %S" k
          in
          (* ts is printed with 6 fractional digits; Verify sums two
             pairs, so allow a few microseconds of rounding. *)
          Alcotest.(check (float 1e-5))
            ("stages." ^ k ^ " matches trace") exported
            (total totals ("flow." ^ k)))
        Flow.all_stages)

let () =
  Alcotest.run "span_trace"
    [
      ( "law",
        List.map QCheck_alcotest.to_alcotest
          [ span_law; span_law_multi_domain ] );
      ( "emission",
        [
          Alcotest.test_case "disabled tracing is inert" `Quick
            test_disabled_is_inert;
          Alcotest.test_case "timed_span agrees with its events" `Quick
            test_timed_span_matches_events;
          Alcotest.test_case "counter" `Quick test_counter_event;
          Alcotest.test_case "JSON escaping" `Quick test_event_json_escaping;
        ] );
      ( "flow",
        [
          Alcotest.test_case "span totals equal stage_times" `Quick
            test_flow_spans_match_stage_times;
          Alcotest.test_case "trace file matches JSON export" `Quick
            test_file_sink_matches_json_export;
        ] );
    ]
