(* Technology library: units formatting, process constants, resource
   tables, resource sets, voltage scaling, battery model. *)

module Units = Lp_tech.Units
module Cmos6 = Lp_tech.Cmos6
module Op = Lp_tech.Op
module Resource = Lp_tech.Resource
module Resource_set = Lp_tech.Resource_set
module Battery = Lp_tech.Battery
module Platform = Lp_tech.Platform

let check_s = Alcotest.(check string)

let test_units_formatting () =
  check_s "nJ" "13nJ" (Units.energy_to_string (Units.nj 13.0));
  check_s "uJ" "116.9uJ" (Units.energy_to_string (Units.uj 116.93));
  check_s "mJ" "44.79mJ" (Units.energy_to_string (Units.mj 44.79));
  check_s "J" "2.5J" (Units.energy_to_string 2.5);
  check_s "zero" "0J" (Units.energy_to_string 0.0);
  check_s "time us" "50us" (Units.time_to_string (Units.us 50.0));
  check_s "percent" "35.21%" (Format.asprintf "%a" Units.pp_percent 0.3521)

let test_units_conversions () =
  Alcotest.(check (float 1e-15)) "ns" 2.5e-8 (Units.ns 25.0);
  Alcotest.(check (float 1e-12)) "mw" 6e-3 (Units.mw 6.0);
  Alcotest.(check (float 1e-12)) "20MHz period" 5e-8 (Units.mhz_period_s 20.0)

let test_cmos6_sanity () =
  Alcotest.(check (float 1e-9)) "clock period" 5e-8 Cmos6.clock_period_s;
  Alcotest.(check bool) "gate energy ~pJ" true
    (Cmos6.gate_switch_energy_j > 1e-13 && Cmos6.gate_switch_energy_j < 1e-11);
  Alcotest.(check bool) "bus write > read" true
    (Cmos6.bus_write_energy_j > Cmos6.bus_read_energy_j);
  Alcotest.(check bool) "dram access ~10nJ" true
    (Cmos6.dram_access_energy_j > 1e-9 && Cmos6.dram_access_energy_j < 1e-7)

let test_voltage_scaling () =
  Alcotest.(check (float 1e-9)) "nominal energy ratio" 1.0
    (Cmos6.voltage_energy_ratio Cmos6.vdd_v);
  Alcotest.(check (float 1e-9)) "nominal delay ratio" 1.0
    (Cmos6.voltage_delay_ratio Cmos6.vdd_v);
  Alcotest.(check bool) "half voltage quarters energy" true
    (abs_float (Cmos6.voltage_energy_ratio (Cmos6.vdd_v /. 2.0) -. 0.25) < 1e-9);
  Alcotest.(check bool) "lower voltage is slower" true
    (Cmos6.voltage_delay_ratio 2.0 > 1.0);
  Alcotest.(check bool) "delay monotone" true
    (Cmos6.voltage_delay_ratio 1.5 > Cmos6.voltage_delay_ratio 2.0);
  match Cmos6.voltage_delay_ratio 0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "below threshold accepted"

let test_op_classification () =
  Alcotest.(check int) "all ops listed" 17 (List.length Op.all);
  Alcotest.(check bool) "load is memory" true (Op.is_memory Op.Load);
  Alcotest.(check bool) "add not memory" false (Op.is_memory Op.Add);
  Alcotest.(check bool) "add commutative" true (Op.is_commutative Op.Add);
  Alcotest.(check bool) "sub not commutative" false (Op.is_commutative Op.Sub)

let test_resource_candidates_sorted () =
  List.iter
    (fun op ->
      let cands = Resource.candidates op in
      Alcotest.(check bool) (Op.to_string op ^ " has candidates") true
        (cands <> []);
      let geqs = List.map (fun (k, _) -> Resource.geq k) cands in
      Alcotest.(check (list int)) (Op.to_string op ^ " sorted by size")
        (List.sort compare geqs) geqs;
      List.iter
        (fun (k, lat) ->
          Alcotest.(check bool) "positive latency" true (lat > 0);
          Alcotest.(check bool) "can_execute agrees" true (Resource.can_execute k op))
        cands)
    Op.all

let test_resource_tables_positive () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "geq > 0" true (Resource.geq k > 0);
      Alcotest.(check bool) "power > 0" true (Resource.avg_power_w k > 0.0);
      Alcotest.(check bool) "cycle time in ns band" true
        (Resource.cycle_time_s k > 1e-9 && Resource.cycle_time_s k < 1e-6);
      Alcotest.(check (option string)) "name roundtrip"
        (Some (Resource.kind_to_string k))
        (Option.map Resource.kind_to_string
           (Resource.kind_of_string (Resource.kind_to_string k))))
    Resource.all_kinds

let test_resource_set_ops () =
  let s = Resource_set.make [ (Resource.Adder, 2); (Resource.Adder, 1); (Resource.Alu, 1) ] in
  Alcotest.(check int) "duplicates merge" 3 (Resource_set.count s Resource.Adder);
  Alcotest.(check int) "total instances" 4 (Resource_set.total_instances s);
  Alcotest.(check int) "total geq"
    ((3 * Resource.geq Resource.Adder) + Resource.geq Resource.Alu)
    (Resource_set.total_geq s);
  Alcotest.(check bool) "covers adds" true (Resource_set.can_execute s Op.Add);
  Alcotest.(check bool) "no multiplier" false (Resource_set.can_execute s Op.Mul);
  Alcotest.(check bool) "covers_ops" false
    (Resource_set.covers_ops s [ Op.Add; Op.Mul ]);
  (match Resource_set.make [ (Resource.Adder, 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero count accepted");
  Alcotest.(check int) "default sets: 4" 4 (List.length Resource_set.default_sets)

let test_battery () =
  let b = Battery.nimh_aa_pair in
  (* 1.1 Ah * 3600 * 2.4 V * 0.8 = 7603 J *)
  Alcotest.(check bool) "usable energy ~7.6kJ" true
    (abs_float (Battery.usable_energy_j b -. 7603.2) < 1.0);
  let h = Battery.lifetime_hours b ~avg_power_w:0.3 in
  Alcotest.(check bool) "300mW runs ~7h" true (h > 6.0 && h < 8.0);
  Alcotest.(check bool) "lower power, longer life" true
    (Battery.lifetime_s b ~avg_power_w:0.05 > Battery.lifetime_s b ~avg_power_w:0.3);
  (match Battery.lifetime_s b ~avg_power_w:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero power accepted");
  check_s "hours format" "7.0 h"
    (Format.asprintf "%a" Battery.pp_lifetime (7.0 *. 3600.0));
  check_s "days format" "3.0 d"
    (Format.asprintf "%a" Battery.pp_lifetime (72.0 *. 3600.0))

(* --- platforms ----------------------------------------------------- *)

let test_platform_presets () =
  Alcotest.(check (list string))
    "registry names" [ "tiny"; "sparclite"; "mid"; "large" ] Platform.names;
  List.iter
    (fun (p : Platform.t) ->
      Alcotest.(check bool) (p.Platform.name ^ " valid") true
        (Platform.valid p);
      Alcotest.(check bool)
        (p.Platform.name ^ " found by name")
        true
        (match Platform.find p.Platform.name with
        | Some q -> Platform.equal p q
        | None -> false))
    Platform.presets;
  Alcotest.(check bool) "default is sparclite" true
    (Platform.equal Platform.default Platform.sparclite);
  (* The tentpole's byte-exactness hinge: at sparclite every derived
     scale factor is exactly the pre-platform constant. *)
  Alcotest.(check bool) "sparclite energy scale exactly 1" true
    (Platform.energy_scale Platform.sparclite = 1.0);
  Alcotest.(check bool) "sparclite period is the Cmos6 period" true
    (Platform.clock_period_s Platform.sparclite = Cmos6.clock_period_s);
  Alcotest.(check bool) "tiny scales energy down" true
    (Platform.energy_scale Platform.tiny < 1.0)

let test_platform_ceiling () =
  (* Lowering Vdd lowers the sustainable clock along the alpha-power
     curve: sparclite at 2.0 V cannot hold its 20 MHz clock. *)
  Alcotest.(check bool) "nominal supply sustains the peak" true
    (Platform.max_clock_mhz Platform.sparclite
    >= Platform.sparclite.Platform.clock_mhz);
  (match Platform.of_spec "sparclite:vdd=2.0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "20 MHz at 2.0 V accepted");
  (match Platform.of_spec "sparclite:vdd=2.0,clock=5" with
  | Ok (p, keys) ->
      Alcotest.(check bool) "derated clock fits the ceiling" true
        (Platform.valid p);
      Alcotest.(check (list string)) "overridden keys reported"
        [ "clock"; "vdd" ] (List.sort compare keys)
  | Error msg -> Alcotest.failf "derated spec rejected: %s" msg);
  match Platform.validate { Platform.sparclite with Platform.clock_mhz = 0.0 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero clock accepted"

let test_platform_spec_roundtrip () =
  List.iter
    (fun (p : Platform.t) ->
      match Platform.of_spec (Platform.to_spec p) with
      | Ok (q, []) ->
          Alcotest.(check bool)
            (p.Platform.name ^ " spec round-trips")
            true (Platform.equal p q)
      | Ok (_, keys) ->
          Alcotest.failf "bare name reported overrides: %s"
            (String.concat "," keys)
      | Error msg -> Alcotest.failf "%s: %s" p.Platform.name msg)
    Platform.presets;
  (match Platform.of_spec "mid:icache=4096/32/2/wt,mem_latency=6" with
  | Ok (p, keys) ->
      Alcotest.(check (list string)) "override keys"
        [ "icache"; "mem_latency" ] (List.sort compare keys);
      Alcotest.(check int) "icache line override" 32
        p.Platform.icache.Platform.geom_line_bytes;
      Alcotest.(check bool) "write-through override" true
        p.Platform.icache.Platform.geom_write_through;
      Alcotest.(check int) "latency override" 6
        p.Platform.mem_first_word_latency;
      Alcotest.(check bool) "overridden name is a distinct platform" false
        (Platform.equal p Platform.mid);
      (* The canonical spec string reproduces the platform. *)
      (match Platform.of_spec (Platform.to_spec p) with
      | Ok (q, _) ->
          Alcotest.(check bool) "override spec round-trips" true
            (Platform.equal p q)
      | Error msg -> Alcotest.failf "canonical spec rejected: %s" msg)
  | Error msg -> Alcotest.failf "override spec: %s" msg);
  List.iter
    (fun bad ->
      match Platform.of_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" bad)
    [
      "nope"; "sparclite:frob=1"; "sparclite:icache=100/16/1";
      "sparclite:vdd=0.1"; "sparclite:icache=2048"; "";
    ]

let () =
  Alcotest.run "lp_tech"
    [
      ( "units",
        [
          Alcotest.test_case "formatting" `Quick test_units_formatting;
          Alcotest.test_case "conversions" `Quick test_units_conversions;
        ] );
      ( "process",
        [
          Alcotest.test_case "cmos6 sanity" `Quick test_cmos6_sanity;
          Alcotest.test_case "voltage scaling" `Quick test_voltage_scaling;
        ] );
      ( "resources",
        [
          Alcotest.test_case "op classification" `Quick test_op_classification;
          Alcotest.test_case "candidates sorted" `Quick test_resource_candidates_sorted;
          Alcotest.test_case "tables positive" `Quick test_resource_tables_positive;
          Alcotest.test_case "resource sets" `Quick test_resource_set_ops;
        ] );
      ("battery", [ Alcotest.test_case "model" `Quick test_battery ]);
      ( "platform",
        [
          Alcotest.test_case "presets" `Quick test_platform_presets;
          Alcotest.test_case "frequency ceiling" `Quick test_platform_ceiling;
          Alcotest.test_case "spec round-trip" `Quick
            test_platform_spec_roundtrip;
        ] );
    ]
